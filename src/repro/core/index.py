"""Trace-global cluster index: build the lattice once, reduce epochs to bincounts.

The per-epoch pipeline used to rebuild the same structure for every
(epoch, metric) unit: pack attribute codes into int64 leaf keys, reduce
them with ``np.unique``, project every non-empty attribute mask with
another ``np.unique`` over int64 keys, and ``searchsorted`` leaf keys
into each mask's cluster table. Almost none of that depends on the
metric, and the expensive parts don't depend on the epoch either — they
are properties of the *trace's* leaf universe. The index splits the
work into two amortised levels:

**Trace level** (:class:`TraceClusterIndex`, built once per trace):

* all sessions are packed once and reduced to the trace-global leaf
  universe (``leaf_keys`` + a row -> leaf inverse),
* every non-empty attribute mask gets its projected cluster key array
  and a leaf -> cluster inverse,
* cluster-to-cluster projection indices between lattice levels (the
  ``searchsorted`` folds of aggregation and the critical-cluster DP)
  are computed once and cached across all epochs and metrics,
* per-metric validity/problem masks over the whole table are computed
  once and sliced per epoch.

**Epoch level** (:class:`EpochClusterView`, built once per epoch and
shared by every metric): the epoch's *active* subset of each mask's
global cluster table, found with one ``np.unique`` over small int32
cluster ids (never over int64 keys), plus localized leaf projections
and lattice fold indices obtained by gathers through the global cache.
The compact tables are exactly the clusters the legacy engine would
enumerate for the epoch, so downstream phases touch the same amount of
data — minus every per-unit ``np.unique``/``searchsorted``.

With a view, aggregating one (epoch, metric) unit collapses to two
``np.bincount`` calls at the leaf level plus two per mask, folded down
the lattice from the cheapest finer mask. The resulting aggregates may
retain leaf combinations whose sessions are all invalid for the metric
(the legacy engine drops them); such zero-count clusters can never be
problem clusters, never disqualify an ancestor, and never receive
attribution, so problem/critical outputs are identical to the legacy
engine (pinned by ``tests/property/test_parallel_equivalence.py``).

Memory footprint: one int32 per (mask, leaf) pair for the global
inverse tables — ``(2^n - 1) * n_leaves * 4`` bytes dominate (about
20 MB for 40k distinct leaves under the paper's 7 attributes) — plus
the packed key arrays and the cached projection indices.
:meth:`TraceClusterIndex.memory_bytes` reports the exact total.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.aggregation import EpochAggregate, KeyCodec, MaskAggregate
from repro.core.attributes import popcount
from repro.core.metrics import MetricThresholds, QualityMetric
from repro.core.sessions import Session, SessionTable, grow_append
from repro.obs import current_metrics, current_tracer


def _fold_sources(
    mask_keys: dict[int, np.ndarray], n_attrs: int, full: int
) -> dict[int, int]:
    """Each non-leaf mask folds its counts down from one finer mask
    (one extra attribute); pick the finer mask with the fewest clusters
    so every fold touches as little data as possible."""
    fold_source: dict[int, int] = {}
    for m in range(1, full):
        best = -1
        for i in range(n_attrs):
            finer = m | (1 << i)
            if finer == m:
                continue
            if best < 0 or mask_keys[finer].size < mask_keys[best].size:
                best = finer
        fold_source[m] = best
    return fold_source


def _merge_sorted_unique(
    old: np.ndarray, fresh: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge two disjoint sorted unique key arrays.

    Returns ``(merged, old_to_new, fresh_to_new)`` where the position
    maps satisfy ``merged[old_to_new] == old`` and
    ``merged[fresh_to_new] == fresh``. ``merged`` is exactly what
    ``np.unique`` over the concatenation would produce, so incremental
    maintenance stays bit-identical to a from-scratch build.
    """
    old_to_new = np.arange(old.size, dtype=np.int64) + np.searchsorted(
        fresh, old
    )
    fresh_to_new = np.arange(fresh.size, dtype=np.int64) + np.searchsorted(
        old, fresh
    )
    merged = np.empty(old.size + fresh.size, dtype=old.dtype)
    merged[old_to_new] = old
    merged[fresh_to_new] = fresh
    return merged, old_to_new, fresh_to_new


class TraceClusterIndex:
    """Precomputed cluster lattice for one :class:`SessionTable`.

    Build once with :meth:`build`, then call :meth:`epoch_view` (or
    :meth:`aggregate` directly) for any rows subset of the same table.
    The index snapshots the table's vocabularies through its
    :class:`KeyCodec`, so decoded cluster identities are stable across
    epochs.
    """

    __slots__ = (
        "table",
        "codec",
        "leaf_keys",
        "row_to_leaf",
        "mask_keys",
        "leaf_to_cluster",
        "fold_source",
        "fold_order",
        "_project_index",
        "_valid_masks",
        "_problem_masks",
        "_metric_objs",
        "_grow",
    )

    def __init__(
        self,
        table: SessionTable,
        codec: KeyCodec,
        leaf_keys: np.ndarray,
        row_to_leaf: np.ndarray,
        mask_keys: dict[int, np.ndarray],
        leaf_to_cluster: dict[int, np.ndarray],
        fold_source: dict[int, int],
        fold_order: list[int],
    ) -> None:
        self.table = table
        self.codec = codec
        self.leaf_keys = leaf_keys
        self.row_to_leaf = row_to_leaf
        self.mask_keys = mask_keys
        self.leaf_to_cluster = leaf_to_cluster
        self.fold_source = fold_source
        self.fold_order = fold_order
        self._project_index: dict[tuple[int, int], np.ndarray] = {}
        self._valid_masks: dict[str, np.ndarray] = {}
        self._problem_masks: dict[
            tuple[str, MetricThresholds], np.ndarray
        ] = {}
        # Metric objects behind the cached masks: append() needs them to
        # extend the masks chunk-wise. Entries without a tracked object
        # (e.g. masks restored from a snapshot) are dropped on append
        # and lazily recomputed.
        self._metric_objs: dict[str, QualityMetric] = {}
        # Doubling buffers for append-grown arrays (row_to_leaf, masks).
        self._grow: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, table: SessionTable, codec: KeyCodec | None = None
    ) -> "TraceClusterIndex":
        """Pack all sessions, compute the leaf universe and every
        per-mask projection, and prewarm the lattice fold indices."""
        with current_tracer().span("index.build", sessions=len(table)) as span:
            index = cls._build(table, codec)
            span.set(leaves=int(index.leaf_keys.size))
        current_metrics().inc("index.builds")
        return index

    @classmethod
    def _build(
        cls, table: SessionTable, codec: KeyCodec | None = None
    ) -> "TraceClusterIndex":
        codec = codec or KeyCodec.from_table(table)
        field_masks = codec.field_masks()
        full = codec.full_mask

        packed = codec.pack(table.codes)
        leaf_keys, row_to_leaf = np.unique(packed, return_inverse=True)
        row_to_leaf = row_to_leaf.astype(np.int32, copy=False)

        mask_keys: dict[int, np.ndarray] = {full: leaf_keys}
        leaf_to_cluster: dict[int, np.ndarray] = {
            full: np.arange(leaf_keys.size, dtype=np.int32)
        }
        for m in range(1, full):
            keys, inverse = np.unique(
                leaf_keys & field_masks[m], return_inverse=True
            )
            mask_keys[m] = keys
            leaf_to_cluster[m] = inverse.astype(np.int32, copy=False)

        n_attrs = codec.n_attrs
        fold_source = _fold_sources(mask_keys, n_attrs, full)
        fold_order = sorted(range(1, full), key=popcount, reverse=True)

        index = cls(
            table=table,
            codec=codec,
            leaf_keys=leaf_keys,
            row_to_leaf=row_to_leaf,
            mask_keys=mask_keys,
            leaf_to_cluster=leaf_to_cluster,
            fold_source=fold_source,
            fold_order=fold_order,
        )
        # Prewarm every one-attribute-apart projection: these are the
        # aggregation fold indices and the child->parent indices of the
        # critical-cluster descendants DP.
        for m in range(1, full):
            for i in range(n_attrs):
                finer = m | (1 << i)
                if finer != m:
                    index.project_index(finer, m)
        return index

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def append(self, chunk: "SessionTable | Iterable[Session]") -> np.ndarray:
        """Fold a chunk of new sessions into the table and the index.

        Extends the table in place (:meth:`SessionTable.extend`), then
        updates the leaf universe, every per-mask cluster table and
        leaf -> cluster inverse, the cached lattice projection indices,
        the fold sources, and the warmed metric masks — without
        rebuilding from scratch. The result is bit-identical to
        ``TraceClusterIndex.build`` over the concatenated table (pinned
        by ``tests/property/test_streaming_equivalence.py``).

        Cost: O(chunk rows) in the steady state where the chunk
        introduces no unseen attribute combination; O(cluster tables)
        when fresh leaves must be merged in (sorted-merge position
        maps, no re-packing of old rows); and a full key rebuild only
        when a vocabulary crosses a power-of-two size boundary and
        changes the packed-key bit layout — which happens O(log V)
        times over a stream's lifetime. Array storage grows by
        doubling, so repeated epoch-sized appends are amortized O(total
        appended rows).

        Outstanding :class:`EpochClusterView` objects reference the
        pre-append arrays and must not be used after an append; build
        views per epoch (as :class:`~repro.core.substrate.StreamingSubstrate`
        and the batch engine both do).

        Returns the appended row indices.
        """
        rows = self.table.extend(chunk)
        if rows.size == 0:
            return rows
        current_metrics().inc("index.appends")
        current_metrics().inc("index.appended_rows", int(rows.size))
        self._extend_metric_masks(rows)
        if not np.array_equal(self.table.bit_widths(), self.codec.widths):
            self._rebuild_keys()
        else:
            self.codec.note_vocab_growth()
            self._append_keys(rows)
        return rows

    def _extend_metric_masks(self, rows: np.ndarray) -> None:
        """Extend cached metric masks over the appended rows.

        Every registered metric's validity/problem predicate is
        row-elementwise, so evaluating it on the chunk alone equals the
        corresponding slice of a whole-table evaluation. Cached masks
        whose metric object is unknown (restored from a snapshot) are
        dropped and recomputed lazily on next use.
        """
        if not self._valid_masks and not self._problem_masks:
            return
        chunk = self.table.select(rows)
        for name in list(self._valid_masks):
            metric = self._metric_objs.get(name)
            if metric is None:
                del self._valid_masks[name]
                continue
            self._valid_masks[name] = grow_append(
                self._grow,
                ("valid", name),
                self._valid_masks[name],
                metric.valid_mask(chunk),
            )
        for key in list(self._problem_masks):
            name, thresholds = key
            metric = self._metric_objs.get(name)
            if metric is None:
                del self._problem_masks[key]
                continue
            self._problem_masks[key] = grow_append(
                self._grow,
                ("problem",) + key,
                self._problem_masks[key],
                metric.problem_mask(chunk, thresholds),
            )

    def _rebuild_keys(self) -> None:
        """Rebuild the key-side structure after a bit-width change.

        A vocabulary crossed a power-of-two boundary, so every packed
        key changes layout: leaf keys, cluster tables and projections
        must be recomputed. The (already extended) metric-mask caches
        are key-independent and carry over unchanged.
        """
        fresh = TraceClusterIndex.build(self.table)
        self.codec = fresh.codec
        self.leaf_keys = fresh.leaf_keys
        self.row_to_leaf = fresh.row_to_leaf
        self.mask_keys = fresh.mask_keys
        self.leaf_to_cluster = fresh.leaf_to_cluster
        self.fold_source = fresh.fold_source
        self.fold_order = fresh.fold_order
        self._project_index = fresh._project_index

    def _append_keys(self, rows: np.ndarray) -> None:
        """Merge the appended rows' packed keys into the lattice."""
        codec = self.codec
        field_masks = codec.field_masks()
        full = codec.full_mask
        packed = codec.pack(self.table.codes[rows])
        chunk_keys, chunk_inv = np.unique(packed, return_inverse=True)

        n_old = self.leaf_keys.size
        pos = np.searchsorted(self.leaf_keys, chunk_keys)
        if n_old:
            known = (pos < n_old) & (
                self.leaf_keys[np.minimum(pos, n_old - 1)] == chunk_keys
            )
        else:
            known = np.zeros(chunk_keys.size, dtype=bool)
        fresh = chunk_keys[~known]

        if fresh.size == 0:
            # Steady state: every leaf combination has been seen before.
            # Nothing structural changes — one gather appends the rows.
            self.row_to_leaf = grow_append(
                self._grow, "row_to_leaf", self.row_to_leaf, pos[chunk_inv]
            )
            return

        merged, old_to_new, fresh_to_new = _merge_sorted_unique(
            self.leaf_keys, fresh
        )

        remapped = old_to_new[self.row_to_leaf].astype(np.int32, copy=False)
        chunk_leaf = np.searchsorted(merged, chunk_keys)[chunk_inv]
        self.row_to_leaf = grow_append(
            self._grow, "row_to_leaf", remapped, chunk_leaf
        )

        # Per-mask cluster tables: merge the fresh leaves' projections,
        # remap old cluster ids, and extend the leaf -> cluster inverses
        # over the merged leaf universe.
        cluster_old_to_new: dict[int, np.ndarray | None] = {full: old_to_new}
        cluster_fresh: dict[int, tuple[np.ndarray, np.ndarray]] = {
            full: (fresh, fresh_to_new)
        }
        for m in range(1, full):
            cand = np.unique(fresh & field_masks[m])
            keys_m = self.mask_keys[m]
            pos_m = np.searchsorted(keys_m, cand)
            if keys_m.size:
                known_m = (pos_m < keys_m.size) & (
                    keys_m[np.minimum(pos_m, keys_m.size - 1)] == cand
                )
            else:
                known_m = np.zeros(cand.size, dtype=bool)
            fresh_m = cand[~known_m]
            old_l2c = self.leaf_to_cluster[m]
            if fresh_m.size:
                merged_m, old2new_m, fresh2new_m = _merge_sorted_unique(
                    keys_m, fresh_m
                )
                self.mask_keys[m] = merged_m
                old_l2c = old2new_m[old_l2c]
                cluster_old_to_new[m] = old2new_m
            else:
                merged_m = keys_m
                cluster_old_to_new[m] = None
                fresh2new_m = np.empty(0, dtype=np.int64)
            cluster_fresh[m] = (fresh_m, fresh2new_m)
            l2c = np.empty(merged.size, dtype=np.int32)
            l2c[old_to_new] = old_l2c
            l2c[fresh_to_new] = np.searchsorted(merged_m, fresh & field_masks[m])
            self.leaf_to_cluster[m] = l2c

        # Full mask: every leaf is its own cluster (shared array kept).
        self.leaf_keys = merged
        self.mask_keys[full] = merged
        self.leaf_to_cluster[full] = np.arange(merged.size, dtype=np.int32)

        # Patch the cached projection indices instead of recomputing:
        # old fine clusters keep their (possibly renumbered) targets;
        # only the fresh fine clusters pay a searchsorted.
        for (fine, coarse), idx in self._project_index.items():
            fine_o2n = cluster_old_to_new[fine]
            coarse_o2n = cluster_old_to_new[coarse]
            fresh_f, fresh_f_pos = cluster_fresh[fine]
            if fine_o2n is None and coarse_o2n is None:
                continue
            out = np.empty(self.mask_keys[fine].size, dtype=np.int32)
            old_vals = coarse_o2n[idx] if coarse_o2n is not None else idx
            if fine_o2n is None:
                out[:] = old_vals
            else:
                out[fine_o2n] = old_vals
                out[fresh_f_pos] = np.searchsorted(
                    self.mask_keys[coarse], fresh_f & field_masks[coarse]
                )
            self._project_index[(fine, coarse)] = out

        self.fold_source = _fold_sources(
            self.mask_keys, codec.n_attrs, full
        )

    # ------------------------------------------------------------------
    # Precomputed structure
    # ------------------------------------------------------------------
    @property
    def n_leaves(self) -> int:
        return int(self.leaf_keys.size)

    @property
    def n_clusters_total(self) -> int:
        """Distinct clusters across all non-empty masks."""
        return int(sum(keys.size for keys in self.mask_keys.values()))

    def project_index(self, fine: int, coarse: int) -> np.ndarray:
        """Positions of mask ``fine``'s clusters projected onto mask
        ``coarse`` (a strict submask), within ``coarse``'s key array.

        Computed with one ``searchsorted`` on first use and cached —
        every epoch and metric afterwards reuses the same array (the
        projection depends only on the trace's leaf universe).
        """
        key = (fine, coarse)
        idx = self._project_index.get(key)
        if idx is None:
            if coarse & fine != coarse or coarse == fine:
                raise ValueError(
                    f"mask {coarse:#x} is not a strict submask of {fine:#x}"
                )
            proj = self.mask_keys[fine] & self.codec.field_masks()[coarse]
            idx = np.searchsorted(self.mask_keys[coarse], proj).astype(
                np.int32, copy=False
            )
            self._project_index[key] = idx
        return idx

    def valid_mask(self, metric: QualityMetric) -> np.ndarray:
        """Whole-table validity mask for one metric (threshold-free).

        Validity depends only on the metric's definition (e.g. "joined
        sessions only"), never on thresholds, so config sweeps reuse one
        cached mask per metric across every thresholds variant.
        """
        cached = self._valid_masks.get(metric.name)
        if cached is None:
            cached = metric.valid_mask(self.table)
            self._valid_masks[metric.name] = cached
        self._metric_objs[metric.name] = metric
        return cached

    def problem_mask(
        self, metric: QualityMetric, thresholds: MetricThresholds | None = None
    ) -> np.ndarray:
        """Whole-table problem mask, cached per (metric, thresholds)."""
        thresholds = thresholds or MetricThresholds()
        key = (metric.name, thresholds)
        cached = self._problem_masks.get(key)
        if cached is None:
            cached = metric.problem_mask(self.table, thresholds)
            self._problem_masks[key] = cached
        self._metric_objs[metric.name] = metric
        return cached

    def metric_masks(
        self, metric: QualityMetric, thresholds: MetricThresholds | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Whole-table ``(valid, problem)`` boolean masks for one metric.

        Computed once per metric (validity) and per (metric name,
        thresholds) pair (problem flags) and cached; per-epoch
        aggregation slices these instead of re-deriving full-table
        masks for every epoch.
        """
        return self.valid_mask(metric), self.problem_mask(metric, thresholds)

    def warm_metric_masks(
        self,
        metrics: Iterable[QualityMetric],
        thresholds: MetricThresholds | None = None,
    ) -> None:
        """Precompute metric masks (e.g. before shipping to workers)."""
        for metric in metrics:
            self.metric_masks(metric, thresholds)

    def memory_bytes(self) -> int:
        """Bytes held by the index's numpy arrays (incl. caches)."""
        arrays = [self.leaf_keys, self.row_to_leaf]
        arrays += list(self.mask_keys.values())
        arrays += list(self.leaf_to_cluster.values())
        arrays += list(self._project_index.values())
        arrays += list(self._valid_masks.values())
        arrays += list(self._problem_masks.values())
        return int(sum(a.nbytes for a in arrays))

    # ------------------------------------------------------------------
    # Per-epoch reduction
    # ------------------------------------------------------------------
    def epoch_view(self, rows: np.ndarray, epoch: int = 0) -> "EpochClusterView":
        """Compact view of the epoch's active slice of the lattice,
        shared by every metric analysed over the same ``rows``."""
        return EpochClusterView(self, rows, epoch=epoch)

    def aggregate(
        self,
        rows: np.ndarray,
        metric: QualityMetric,
        epoch: int = 0,
        thresholds: MetricThresholds | None = None,
        problem_flags: np.ndarray | None = None,
    ) -> EpochAggregate:
        """One-shot aggregation of ``rows`` for one metric.

        Convenience for single-metric callers; multi-metric callers
        should build one :meth:`epoch_view` and aggregate each metric
        through it.
        """
        return self.epoch_view(rows, epoch=epoch).aggregate(
            metric, thresholds=thresholds, problem_flags=problem_flags
        )


class EpochClusterView:
    """One epoch's active slice of a :class:`TraceClusterIndex`.

    Holds, for every non-empty attribute mask, the sorted global ids of
    the clusters that actually occur among the epoch's rows, the
    compacted (epoch-local) leaf -> cluster projections, and lazily
    localized cluster -> cluster fold indices. All of it is derived
    from the global index by ``np.unique`` over small int32 id arrays
    and gathers — no int64 key packing, no ``searchsorted`` over keys.

    The view is metric-independent: aggregate each metric over the same
    epoch with :meth:`aggregate`, and the problem/critical detectors
    reuse ``leaf_to_cluster``/:meth:`project_index` via the aggregate's
    ``index`` attribute.
    """

    __slots__ = (
        "index",
        "epoch",
        "rows",
        "row_leaf_local",
        "active_ids",
        "leaf_to_cluster",
        "_keys",
        "_project_local",
        "_metric_sessions",
        "_significant",
    )

    def __init__(
        self, index: TraceClusterIndex, rows: np.ndarray, epoch: int = 0
    ) -> None:
        self.index = index
        self.epoch = epoch
        rows = np.asarray(rows)
        self.rows = rows

        inv = index.row_to_leaf[rows]
        leaf_ids, row_leaf_local = np.unique(inv, return_inverse=True)
        self.row_leaf_local = row_leaf_local.astype(np.int32, copy=False)

        full = index.codec.full_mask
        active_ids: dict[int, np.ndarray] = {full: leaf_ids}
        leaf_to_cluster: dict[int, np.ndarray] = {
            full: np.arange(leaf_ids.size, dtype=np.int32)
        }
        for m in range(1, full):
            ids, local = np.unique(
                index.leaf_to_cluster[m][leaf_ids], return_inverse=True
            )
            active_ids[m] = ids
            leaf_to_cluster[m] = local.astype(np.int32, copy=False)
        self.active_ids = active_ids
        self.leaf_to_cluster = leaf_to_cluster
        self._keys: dict[int, np.ndarray] = {}
        self._project_local: dict[tuple[int, int], np.ndarray] = {}
        self._metric_sessions: dict[
            str, tuple[np.ndarray, np.ndarray, dict[int, np.ndarray]]
        ] = {}
        self._significant: dict[tuple[str, int], dict[int, np.ndarray]] = {}

    @property
    def n_leaves(self) -> int:
        return int(self.active_ids[self.index.codec.full_mask].size)

    def keys(self, mask: int) -> np.ndarray:
        """Sorted packed keys of the epoch's active clusters of ``mask``."""
        out = self._keys.get(mask)
        if out is None:
            out = self.index.mask_keys[mask][self.active_ids[mask]]
            self._keys[mask] = out
        return out

    def project_index(self, fine: int, coarse: int) -> np.ndarray:
        """Epoch-local analog of :meth:`TraceClusterIndex.project_index`.

        Localized once per (fine, coarse) pair per epoch — every metric
        of the epoch shares it — by gathering the cached global
        projection at the active fine clusters and re-ranking within
        the active coarse clusters. Every projection of an active fine
        cluster is itself active (it contains the same active leaf), so
        the ``searchsorted`` below always hits exactly.
        """
        key = (fine, coarse)
        idx = self._project_local.get(key)
        if idx is None:
            global_proj = self.index.project_index(fine, coarse)
            idx = np.searchsorted(
                self.active_ids[coarse], global_proj[self.active_ids[fine]]
            ).astype(np.int32, copy=False)
            self._project_local[key] = idx
        return idx

    def _metric_session_folds(
        self, metric: QualityMetric
    ) -> tuple[np.ndarray, np.ndarray, dict[int, np.ndarray]]:
        """``(valid_rows, leaf_sessions, sessions_per_mask)`` for one metric.

        Session counts depend only on the metric's *validity* pattern,
        never on thresholds, so one computation per (epoch, metric) is
        shared by every thresholds variant of a config sweep (and by
        ``problem_flags`` overrides). Cached on the view.
        """
        cached = self._metric_sessions.get(metric.name)
        if cached is None:
            index = self.index
            valid = index.valid_mask(metric)[self.rows]
            leaf_sessions = np.bincount(
                self.row_leaf_local[valid], minlength=self.n_leaves
            ).astype(np.int64, copy=False)
            full = index.codec.full_mask
            sessions: dict[int, np.ndarray] = {full: leaf_sessions}
            for m in index.fold_order:
                src = index.fold_source[m]
                idx = self.project_index(src, m)
                n = int(self.active_ids[m].size)
                # Counts stay int64-exact: bincount's float64 weights
                # are exact for values < 2^53.
                sessions[m] = np.bincount(
                    idx, weights=sessions[src], minlength=n
                ).astype(np.int64)
            cached = (valid, leaf_sessions, sessions)
            self._metric_sessions[metric.name] = cached
        return cached

    def significant_clusters(
        self, metric_name: str, min_sessions: int
    ) -> dict[int, np.ndarray] | None:
        """Per mask: indices of active clusters at or above the session floor.

        Session counts are threshold-independent, so this subset — the
        only clusters the problem predicate can ever flag and the only
        seeds the critical-cluster descendants test needs — is computed
        once per (epoch, metric, floor) and shared by every thresholds
        variant of a config sweep. Returns ``None`` when the metric's
        session folds have not been computed yet (callers then fall
        back to scanning the aggregate's own arrays).
        """
        key = (metric_name, int(min_sessions))
        cached = self._significant.get(key)
        if cached is None:
            folds = self._metric_sessions.get(metric_name)
            if folds is None:
                return None
            _, _, sessions = folds
            cached = {
                m: np.nonzero(counts >= min_sessions)[0]
                for m, counts in sessions.items()
            }
            self._significant[key] = cached
        return cached

    def aggregate(
        self,
        metric: QualityMetric,
        thresholds: MetricThresholds | None = None,
        problem_flags: np.ndarray | None = None,
    ) -> EpochAggregate:
        """Aggregate this epoch's rows for one metric.

        Output-equivalent to :func:`repro.core.aggregation.aggregate_epoch`
        over the same rows, except leaf combinations with no *valid*
        session for the metric are retained with zero counts (the
        legacy engine drops them) — which downstream detection provably
        ignores. Two leaf-level bincounts plus two per mask, folded
        down the lattice; no per-epoch key packing at all. The
        threshold-independent half (validity and session counts) is
        cached per metric, so re-aggregating the same epoch under new
        thresholds pays only the problem-count bincounts.
        """
        index = self.index
        valid, leaf_sessions, sessions = self._metric_session_folds(metric)
        if problem_flags is None:
            problem = index.problem_mask(metric, thresholds)[self.rows]
        else:
            problem_flags = np.asarray(problem_flags, dtype=bool)
            if problem_flags.shape != (self.rows.size,):
                raise ValueError(
                    f"problem_flags shape {problem_flags.shape} != rows "
                    f"{(self.rows.size,)}"
                )
            problem = problem_flags & valid

        leaf_problems = np.bincount(
            self.row_leaf_local[problem], minlength=self.n_leaves
        ).astype(np.int64, copy=False)

        full = index.codec.full_mask
        problems: dict[int, np.ndarray] = {full: leaf_problems}
        for m in index.fold_order:
            src = index.fold_source[m]
            idx = self.project_index(src, m)
            n = int(self.active_ids[m].size)
            problems[m] = np.bincount(
                idx, weights=problems[src], minlength=n
            ).astype(np.int64)

        per_mask = {
            m: MaskAggregate(
                mask=m,
                keys=self.keys(m),
                sessions=sessions[m],
                problems=problems[m],
            )
            for m in range(1, full + 1)
        }
        return EpochAggregate(
            epoch=self.epoch,
            metric_name=metric.name,
            codec=index.codec,
            per_mask=per_mask,
            total_sessions=int(leaf_sessions.sum()),
            total_problems=int(leaf_problems.sum()),
            index=self,
        )
