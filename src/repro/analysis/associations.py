"""Attribute-association analysis (the paper's §3.2 corner case).

The critical-cluster algorithm can find *two* phase-transition points
"if some of the attributes are themselves correlated; e.g., if a
specific Site only uses a single CDN or most of its clients appear
from a single ISP" (paper Section 3.2). This module measures exactly
that: pairwise association between the session attributes via Cramér's
V (a chi-squared-based [0, 1] association coefficient for categorical
variables), plus per-value concentration lookups ("which CDN carries
site X?").

Use it to explain split attributions: when a leaf's problem mass is
divided between two minimal critical clusters, the pair's Cramér's V
is typically high.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.sessions import SessionTable


def cramers_v(codes_a: np.ndarray, codes_b: np.ndarray) -> float:
    """Cramér's V between two integer-coded categorical columns.

    Uses the bias-corrected estimator (Bergsma 2013); returns 0 for
    degenerate inputs (a constant column or an empty sample).
    """
    codes_a = np.asarray(codes_a)
    codes_b = np.asarray(codes_b)
    if codes_a.shape != codes_b.shape:
        raise ValueError("columns must have the same length")
    n = codes_a.size
    if n == 0:
        return 0.0
    r = int(codes_a.max()) + 1
    k = int(codes_b.max()) + 1
    if r < 2 or k < 2:
        return 0.0
    joint = np.zeros((r, k), dtype=np.float64)
    np.add.at(joint, (codes_a, codes_b), 1.0)
    row = joint.sum(axis=1, keepdims=True)
    col = joint.sum(axis=0, keepdims=True)
    expected = row @ col / n
    with np.errstate(divide="ignore", invalid="ignore"):
        chi2 = np.nansum(
            np.where(expected > 0, (joint - expected) ** 2 / expected, 0.0)
        )
    phi2 = chi2 / n
    # Bias correction.
    phi2_corr = max(phi2 - (r - 1) * (k - 1) / (n - 1), 0.0) if n > 1 else 0.0
    r_corr = r - (r - 1) ** 2 / (n - 1) if n > 1 else r
    k_corr = k - (k - 1) ** 2 / (n - 1) if n > 1 else k
    denom = min(r_corr - 1, k_corr - 1)
    if denom <= 0:
        return 0.0
    return float(np.sqrt(phi2_corr / denom))


@dataclass(frozen=True)
class AttributeAssociation:
    """Association strength between two attributes."""

    attribute_a: str
    attribute_b: str
    cramers_v: float


def attribute_associations(
    table: SessionTable, threshold: float = 0.0
) -> list[AttributeAssociation]:
    """Pairwise Cramér's V over all attribute pairs, strongest first."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    results = []
    names = table.schema.names
    for (i, a), (j, b) in combinations(enumerate(names), 2):
        v = cramers_v(table.codes[:, i], table.codes[:, j])
        if v >= threshold:
            results.append(
                AttributeAssociation(attribute_a=a, attribute_b=b, cramers_v=v)
            )
    results.sort(key=lambda r: -r.cramers_v)
    return results


def value_concentration(
    table: SessionTable, attribute: str, value: str, other: str
) -> dict[str, float]:
    """Distribution of ``other`` among sessions with ``attribute=value``.

    The paper's examples become queries: ``value_concentration(t,
    "site", "site_07", "cdn")`` answers "does site_07 use a single
    CDN?" — a near-1.0 top share explains an ambiguous attribution.
    """
    col = table.schema.index(attribute)
    other_col = table.schema.index(other)
    code = table.code_of(attribute, value)
    if code is None:
        raise KeyError(f"unknown {attribute} value {value!r}")
    rows = table.codes[:, col] == code
    n = int(rows.sum())
    if n == 0:
        return {}
    counts = np.bincount(
        table.codes[rows, other_col], minlength=len(table.vocabs[other_col])
    )
    return {
        table.vocabs[other_col][idx]: counts[idx] / n
        for idx in np.nonzero(counts)[0]
    }


def explain_split_attribution(
    table: SessionTable, key_a, key_b
) -> list[AttributeAssociation]:
    """Associations between the attribute types of two competing keys.

    When the phase-transition search splits a leaf between two minimal
    critical clusters, the association between their attribute sets is
    the likely reason; this returns the cross-pairs' Cramér's V.
    """
    names = table.schema.names
    out = []
    for a in key_a.attributes:
        for b in key_b.attributes:
            if a == b:
                continue
            v = cramers_v(
                table.codes[:, names.index(a)], table.codes[:, names.index(b)]
            )
            out.append(AttributeAssociation(a, b, v))
    out.sort(key=lambda r: -r.cramers_v)
    return out
