"""Empirical distributions of the quality metrics (paper Figure 1).

Figure 1 shows CDFs of buffering ratio, bitrate and join time over the
week (join failures are binary, so no distribution). These helpers
compute ECDFs and the headline quantile statements the paper calls out
("more than 5% of sessions have a buffering ratio larger than 10%",
"more than 80% of sessions observe an average bitrate less than
2 Mbps", ...).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import BITRATE, BUFFERING_RATIO, JOIN_TIME, QualityMetric
from repro.core.sessions import SessionTable


@dataclass
class ECDF:
    """Empirical CDF over finite metric values."""

    values: np.ndarray  # sorted

    def __post_init__(self) -> None:
        vals = np.asarray(self.values, dtype=np.float64)
        vals = vals[np.isfinite(vals)]
        self.values = np.sort(vals)

    @property
    def n(self) -> int:
        return self.values.size

    def at(self, x: np.ndarray | float) -> np.ndarray | float:
        """P(value <= x)."""
        if self.n == 0:
            raise ValueError("ECDF over empty sample")
        result = np.searchsorted(self.values, np.asarray(x, dtype=np.float64),
                                 side="right") / self.n
        return float(result) if np.isscalar(x) else result

    def exceed(self, x: float) -> float:
        """P(value > x)."""
        return 1.0 - float(self.at(x))

    def quantile(self, q: np.ndarray | float) -> np.ndarray | float:
        if self.n == 0:
            raise ValueError("ECDF over empty sample")
        return np.quantile(self.values, q)

    def curve(self, grid: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) over a supplied grid — the printable figure series."""
        grid = np.asarray(grid, dtype=np.float64)
        return grid, np.asarray(self.at(grid))


#: The three continuous Figure 1 metrics.
FIGURE1_METRICS: tuple[QualityMetric, ...] = (BUFFERING_RATIO, BITRATE, JOIN_TIME)


def metric_ecdf(table: SessionTable, metric: QualityMetric) -> ECDF:
    """ECDF of one metric over its valid sessions."""
    valid = metric.valid_mask(table)
    return ECDF(metric.values(table)[valid])


def quality_cdfs(table: SessionTable) -> dict[str, ECDF]:
    """ECDFs for the three Figure 1 metrics."""
    return {m.name: metric_ecdf(table, m) for m in FIGURE1_METRICS}


def default_grid(metric: QualityMetric) -> np.ndarray:
    """Plot grids matching the paper's axes.

    Buffering ratio and join time use log-spaced grids (the paper's
    x-axes are log scale); bitrate is linear 0..10 Mbps.
    """
    if metric.name == "buffering_ratio":
        return np.logspace(-5, 0, 26)
    if metric.name == "bitrate":
        return np.linspace(0.0, 10_000.0, 26)
    if metric.name == "join_time":
        return np.logspace(-1, 3, 26)  # 0.1 s .. 1000 s
    raise ValueError(f"no Figure 1 grid for metric {metric.name!r}")


def headline_statistics(table: SessionTable) -> dict[str, float]:
    """The sentences the paper reads off Figure 1, as numbers."""
    cdfs = quality_cdfs(table)
    return {
        "frac_buffering_ratio_gt_10pct": cdfs["buffering_ratio"].exceed(0.10),
        "frac_buffering_ratio_gt_5pct": cdfs["buffering_ratio"].exceed(0.05),
        "frac_join_time_gt_10s": cdfs["join_time"].exceed(10.0),
        "frac_bitrate_lt_2mbps": float(cdfs["bitrate"].at(2000.0)),
        "frac_bitrate_lt_700kbps": float(cdfs["bitrate"].at(700.0)),
    }
