"""One-shot markdown report of a trace analysis.

Collects the headline pieces of every evaluation artifact — dataset
statistics, problem structure, prevalence/persistence, cross-metric
overlap, top critical clusters, what-if potential — into a single
markdown document an operator (or a reviewer) can read top to bottom.
Backs the CLI's ``report`` subcommand.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.breakdown import single_attribute_share
from repro.analysis.cdfs import headline_statistics
from repro.analysis.render import render_kv, render_table
from repro.analysis.tables import coverage_table, jaccard_table
from repro.analysis.timeseries import cross_metric_correlation
from repro.analysis.whatif import (
    rank_critical_clusters,
    reactive_simulation,
    topk_improvement_curve,
)
from repro.core.pipeline import TraceAnalysis
from repro.core.sessions import SessionTable
from repro.core.streaks import (
    max_persistence_values,
    median_persistence_values,
    prevalence_values,
)
from repro.trace.events import EventCatalog


def _code_block(text: str) -> str:
    return "```\n" + text + "\n```"


def build_report(
    table: SessionTable,
    analysis: TraceAnalysis,
    catalog: EventCatalog | None = None,
    title: str = "Video quality problem-structure report",
) -> str:
    """Render the full markdown report."""
    lines: list[str] = [f"# {title}", ""]
    grid = analysis.grid
    lines += [
        f"*{len(table):,} sessions over {grid.n_epochs} hourly epochs; "
        f"{len(analysis.metrics)} quality metrics analysed.*",
        "",
    ]

    lines += ["## Dataset quality overview", ""]
    lines.append(_code_block(render_kv(headline_statistics(table))))
    lines.append("")

    lines += ["## Problem structure (per metric)", ""]
    rows = coverage_table(analysis)
    lines.append(_code_block(render_table(
        ["Metric", "Problem clusters/epoch", "Critical clusters/epoch",
         "Problem coverage", "Critical coverage"],
        [
            [r.metric, r.mean_problem_clusters, r.mean_critical_clusters,
             r.mean_problem_cluster_coverage, r.mean_critical_cluster_coverage]
            for r in rows
        ],
    )))
    lines.append("")

    lines += ["## Recurrence and persistence", ""]
    recurrence_rows = []
    for name, ma in analysis.metrics.items():
        timelines = ma.problem_timelines()
        prevalence = prevalence_values(timelines)
        medians = median_persistence_values(timelines)
        peaks = max_persistence_values(timelines)
        recurrence_rows.append([
            name,
            float((prevalence >= 0.1).mean()) if prevalence.size else 0.0,
            float((medians >= 2).mean()) if medians.size else 0.0,
            float(peaks.max()) if peaks.size else 0.0,
        ])
    lines.append(_code_block(render_table(
        ["Metric", "Clusters with prevalence>=10%", "Clusters median>=2h",
         "Longest streak (h)"],
        recurrence_rows,
    )))
    lines.append("")

    lines += ["## Cross-metric structure", ""]
    overlaps = jaccard_table(analysis, k=100)
    corr = cross_metric_correlation(analysis)
    lines.append(_code_block(render_table(
        ["Metric A", "Metric B", "Jaccard(top-100)", "Temporal correlation"],
        [[a, b, j, corr.get((a, b), corr.get((b, a), 0.0))]
         for (a, b), j in overlaps.items()],
    )))
    lines.append("")

    lines += ["## Top critical clusters", ""]
    planted = {e.cluster_key: e.tag for e in catalog} if catalog else {}
    for name, ma in analysis.metrics.items():
        totals = ma.critical_attribution_totals()
        top = rank_critical_clusters(ma, by="coverage")[:5]
        lines.append(f"### {name}")
        lines.append("")
        lines.append(_code_block(render_table(
            ["Cluster", "Attributed problem sessions", "Ground truth"],
            [
                [key.label(), totals.get(key, 0.0),
                 planted.get(key, "(organic/unknown)")]
                for key in top
            ],
        )))
        lines.append("")
        shares = single_attribute_share(ma)
        lines.append(
            "Single-attribute shares: "
            + ", ".join(f"{k}={v:.0%}" for k, v in shares.items())
        )
        lines.append("")

    lines += ["## Engagement impact (viewing minutes lost)", ""]
    from repro.analysis.engagement import engagement_weighted_ranking

    engagement_rows = []
    for name, ma in analysis.metrics.items():
        for impact in engagement_weighted_ranking(table, ma, top_k=3):
            engagement_rows.append(
                [name, impact.key.label(), impact.minutes_lost,
                 impact.minutes_lost_share]
            )
    lines.append(_code_block(render_table(
        ["Metric", "Cluster", "Minutes lost", "Share of all loss"],
        engagement_rows,
        precision=1,
    )))
    lines.append("")

    lines += ["## Improvement potential", ""]
    potential_rows = []
    for name, ma in analysis.metrics.items():
        curve = topk_improvement_curve(ma, by="coverage")
        reactive = reactive_simulation(ma, detection_delay_epochs=1)
        potential_rows.append([
            name,
            curve.at_fraction(0.01),
            float(curve.improvement[-1]) if curve.improvement.size else 0.0,
            reactive.improvement,
        ])
    lines.append(_code_block(render_table(
        ["Metric", "Fix top 1% (oracle)", "Fix all critical clusters",
         "Reactive (1h delay)"],
        potential_rows,
    )))
    lines.append("")
    return "\n".join(lines)


def write_report(
    path: str | Path,
    table: SessionTable,
    analysis: TraceAnalysis,
    catalog: EventCatalog | None = None,
    title: str = "Video quality problem-structure report",
) -> Path:
    """Build and write the report; returns the path."""
    path = Path(path)
    path.write_text(
        build_report(table, analysis, catalog=catalog, title=title),
        encoding="utf-8",
    )
    return path
