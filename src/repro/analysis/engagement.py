"""Engagement impact of quality problems (the paper's motivation).

The paper's premise (Section 1, citing Dobrian et al. SIGCOMM'11 and
Krishnan & Sitaraman IMC'12) is that quality problems cost *engagement*
— viewing minutes and return visits — and therefore revenue. The
evaluation then counts problem *sessions*; this module closes the
motivational loop by weighting problems with an engagement model:

* buffering: each percentage point of buffering ratio costs
  ``minutes_lost_per_buffering_point`` minutes of viewing (the paper
  quotes 3-4 minutes per 1%, Section 2);
* join failures: the entire expected session is lost;
* slow joins: abandonment probability grows with join time beyond a
  patience threshold (Krishnan & Sitaraman's quasi-experiments);
* low bitrate: a mild multiplicative engagement discount.

``engagement_weighted_ranking`` re-ranks critical clusters by estimated
viewing-minutes lost, which can differ substantially from the
session-count ranking — a cluster of short mobile sessions counts the
same in sessions but much less in minutes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.clusters import ClusterKey
from repro.core.pipeline import MetricAnalysis
from repro.core.sessions import SessionTable


@dataclass(frozen=True)
class EngagementModel:
    """Calibration of quality -> lost viewing minutes."""

    #: Minutes of viewing lost per percentage point of buffering ratio
    #: (paper Section 2: "even a 1% increase in buffering ratio can
    #: lead to 3-4 minutes of lost viewership").
    minutes_lost_per_buffering_point: float = 3.5
    #: Expected minutes a successful session would have delivered,
    #: used to price a join failure.
    expected_session_minutes: float = 12.0
    #: Join-time patience: abandonment probability approaches 1 as
    #: join time grows; at ``join_patience_s`` it is ~63%.
    join_patience_s: float = 15.0
    #: Engagement discount per halving of bitrate below the reference.
    bitrate_reference_kbps: float = 2000.0
    bitrate_discount_per_halving: float = 0.06

    def __post_init__(self) -> None:
        if self.minutes_lost_per_buffering_point < 0:
            raise ValueError("minutes lost must be non-negative")
        if self.expected_session_minutes <= 0:
            raise ValueError("expected session minutes must be positive")
        if self.join_patience_s <= 0:
            raise ValueError("join patience must be positive")
        if not 0 <= self.bitrate_discount_per_halving < 1:
            raise ValueError("bitrate discount must be in [0, 1)")

    # -- per-session losses (vectorised) -----------------------------------
    def buffering_minutes_lost(self, table: SessionTable) -> np.ndarray:
        """Viewing minutes lost to rebuffering, per session."""
        ratio_points = table.buffering_ratio * 100.0
        return np.where(
            table.join_failed, 0.0,
            ratio_points * self.minutes_lost_per_buffering_point,
        )

    def join_failure_minutes_lost(self, table: SessionTable) -> np.ndarray:
        """Whole expected sessions lost to join failures."""
        return np.where(
            table.join_failed, self.expected_session_minutes, 0.0
        )

    def join_time_minutes_lost(self, table: SessionTable) -> np.ndarray:
        """Expected abandonment loss from slow joins."""
        join = np.nan_to_num(table.join_time_s, nan=0.0)
        abandon_p = 1.0 - np.exp(-join / self.join_patience_s)
        return np.where(
            table.join_failed, 0.0,
            abandon_p * self.expected_session_minutes,
        )

    def bitrate_minutes_lost(self, table: SessionTable) -> np.ndarray:
        """Engagement discount from sub-reference bitrates."""
        bitrate = np.nan_to_num(table.bitrate_kbps, nan=self.bitrate_reference_kbps)
        halvings = np.maximum(
            np.log2(self.bitrate_reference_kbps / np.maximum(bitrate, 1.0)), 0.0
        )
        watched_minutes = np.where(
            table.join_failed, 0.0, table.duration_s / 60.0
        )
        discount = np.minimum(
            halvings * self.bitrate_discount_per_halving, 0.95
        )
        return watched_minutes * discount

    def total_minutes_lost(self, table: SessionTable) -> np.ndarray:
        """All quality-driven engagement losses, per session."""
        return (
            self.buffering_minutes_lost(table)
            + self.join_failure_minutes_lost(table)
            + self.join_time_minutes_lost(table)
            + self.bitrate_minutes_lost(table)
        )


@dataclass
class EngagementImpact:
    """Engagement loss attributed to one cluster."""

    key: ClusterKey
    sessions: int
    minutes_lost: float
    minutes_lost_share: float


def cluster_engagement_impact(
    table: SessionTable,
    keys: list[ClusterKey],
    model: EngagementModel | None = None,
) -> list[EngagementImpact]:
    """Estimated viewing-minutes lost within each cluster.

    Clusters may overlap; shares are of the trace's total loss, so
    overlapping clusters can sum past 1.
    """
    model = model or EngagementModel()
    losses = model.total_minutes_lost(table)
    total = float(losses.sum())
    impacts = []
    for key in keys:
        rows = np.ones(len(table), dtype=bool)
        for attribute, value in key.pairs:
            col = table.schema.index(attribute)
            code = table.code_of(attribute, value)
            if code is None:
                rows[:] = False
                break
            rows &= table.codes[:, col] == code
        cluster_loss = float(losses[rows].sum())
        impacts.append(
            EngagementImpact(
                key=key,
                sessions=int(rows.sum()),
                minutes_lost=cluster_loss,
                minutes_lost_share=cluster_loss / total if total else 0.0,
            )
        )
    return impacts


def engagement_weighted_ranking(
    table: SessionTable,
    ma: MetricAnalysis,
    model: EngagementModel | None = None,
    top_k: int = 20,
) -> list[EngagementImpact]:
    """Critical clusters re-ranked by engagement loss.

    Takes the metric's critical identities (union over epochs),
    estimates each one's viewing-minutes loss over the whole trace, and
    returns them ordered by that loss — the ranking an
    advertising/subscription business would act on.
    """
    keys = list(ma.critical_timelines().keys())
    impacts = cluster_engagement_impact(table, keys, model=model)
    impacts.sort(key=lambda i: -i.minutes_lost)
    return impacts[:top_k]
