"""Evaluation tables (paper Tables 1, 2 and 3).

* Table 1 — mean problem/critical cluster counts and coverages.
* Table 2 — Jaccard similarity of top-100 critical clusters between
  metric pairs.
* Table 3 — characterisation of the most prevalent (>60%) critical
  clusters by attribute type, cross-referenced against the planted
  ground-truth catalogue when one is available (our replacement for
  the paper's manual/domain-knowledge analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clusters import ClusterKey
from repro.core.overlap import top_k_critical_overlap
from repro.core.pipeline import MetricAnalysis, TraceAnalysis
from repro.trace.events import EventCatalog

#: Attribute types Table 3 reports on.
TABLE3_ATTRIBUTES: tuple[str, ...] = ("asn", "cdn", "site", "connection_type")


@dataclass
class CoverageRow:
    """One Table 1 row."""

    metric: str
    mean_problem_clusters: float
    mean_critical_clusters: float
    critical_fraction: float  # critical / problem cluster count
    mean_problem_cluster_coverage: float
    mean_critical_cluster_coverage: float
    coverage_fraction: float  # critical coverage / problem coverage


def coverage_table(analysis: TraceAnalysis) -> list[CoverageRow]:
    """Table 1 across all analysed metrics."""
    rows = []
    for name, ma in analysis.metrics.items():
        pc = ma.mean_problem_clusters
        cc = ma.mean_critical_clusters
        pcov = ma.mean_problem_cluster_coverage
        ccov = ma.mean_critical_cluster_coverage
        rows.append(
            CoverageRow(
                metric=name,
                mean_problem_clusters=pc,
                mean_critical_clusters=cc,
                critical_fraction=cc / pc if pc else 0.0,
                mean_problem_cluster_coverage=pcov,
                mean_critical_cluster_coverage=ccov,
                coverage_fraction=ccov / pcov if pcov else 0.0,
            )
        )
    return rows


def jaccard_table(
    analysis: TraceAnalysis, k: int = 100
) -> dict[tuple[str, str], float]:
    """Table 2: pairwise top-``k`` critical-cluster overlap."""
    return top_k_critical_overlap(analysis.metrics, k=k)


@dataclass
class PrevalentCluster:
    """One highly prevalent critical cluster with its explanation."""

    key: ClusterKey
    prevalence: float
    attributed_problems: float
    ground_truth_tag: str | None = None


@dataclass
class PrevalentClusterTable:
    """Table 3: metric -> attribute type -> prevalent clusters."""

    prevalence_threshold: float
    cells: dict[str, dict[str, list[PrevalentCluster]]] = field(default_factory=dict)

    def cell(self, metric: str, attribute: str) -> list[PrevalentCluster]:
        return self.cells.get(metric, {}).get(attribute, [])


def _ground_truth_index(catalog: EventCatalog | None) -> dict[ClusterKey, str]:
    if catalog is None:
        return {}
    index: dict[ClusterKey, str] = {}
    for event in catalog:
        index.setdefault(event.cluster_key, event.tag)
    return index


def prevalent_critical_clusters(
    analysis: TraceAnalysis,
    prevalence_threshold: float = 0.6,
    catalog: EventCatalog | None = None,
) -> PrevalentClusterTable:
    """Table 3 over all metrics.

    Only single-attribute clusters over ASN/CDN/Site/ConnectionType
    are tabulated, matching the paper's presentation. With a planted
    catalogue, each cluster is annotated with the ground-truth tag it
    corresponds to (``None`` marks organic/noise detections).
    """
    if not 0 < prevalence_threshold <= 1:
        raise ValueError("prevalence_threshold must be in (0, 1]")
    gt = _ground_truth_index(catalog)
    table = PrevalentClusterTable(prevalence_threshold=prevalence_threshold)
    for metric_name, ma in analysis.metrics.items():
        timelines = ma.critical_timelines()
        totals = ma.critical_attribution_totals()
        per_attr: dict[str, list[PrevalentCluster]] = {
            a: [] for a in TABLE3_ATTRIBUTES
        }
        for key, timeline in timelines.items():
            if timeline.prevalence < prevalence_threshold:
                continue
            if len(key.attributes) != 1:
                continue
            attr = key.attributes[0]
            if attr not in per_attr:
                continue
            per_attr[attr].append(
                PrevalentCluster(
                    key=key,
                    prevalence=timeline.prevalence,
                    attributed_problems=totals.get(key, 0.0),
                    ground_truth_tag=gt.get(key),
                )
            )
        for clusters in per_attr.values():
            clusters.sort(key=lambda c: -c.prevalence)
        table.cells[metric_name] = per_attr
    return table


def reduction_summary(ma: MetricAnalysis) -> dict[str, float]:
    """The Figure 9 caption numbers for one metric."""
    pc = ma.mean_problem_clusters
    cc = ma.mean_critical_clusters
    return {
        "mean_problem_clusters": pc,
        "mean_critical_clusters": cc,
        "reduction_factor": pc / cc if cc else float("inf"),
    }
