"""Per-epoch timeseries (paper Figures 2, 9 and the Fig. 13 baseline).

* Figure 2: hourly fraction of problem sessions per metric, plus the
  consistency statistics the paper quotes (mean problem ratio,
  standard deviation, cross-metric temporal correlation).
* Figure 9: number of problem clusters vs number of critical clusters
  per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.pipeline import MetricAnalysis, TraceAnalysis


@dataclass
class ProblemRatioSeries:
    """Hourly problem-session fraction for one metric (Figure 2)."""

    metric: str
    hours: np.ndarray
    ratio: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.ratio.mean()) if self.ratio.size else 0.0

    @property
    def std(self) -> float:
        return float(self.ratio.std()) if self.ratio.size else 0.0


def problem_ratio_timeseries(analysis: TraceAnalysis) -> dict[str, ProblemRatioSeries]:
    """Figure 2 series for every analysed metric."""
    out = {}
    for name, ma in analysis.metrics.items():
        out[name] = ProblemRatioSeries(
            metric=name,
            hours=ma.grid.hours(),
            ratio=ma.problem_ratio_series,
        )
    return out


def cross_metric_correlation(
    analysis: TraceAnalysis,
) -> dict[tuple[str, str], float]:
    """Pearson correlation of hourly problem ratios between metrics.

    The paper observes the metrics are only weakly temporally
    correlated (Section 2, Figure 2 discussion).
    """
    series = {n: ma.problem_ratio_series for n, ma in analysis.metrics.items()}
    out: dict[tuple[str, str], float] = {}
    for a, b in combinations(series, 2):
        x, y = series[a], series[b]
        if x.size < 2 or np.allclose(x.std(), 0) or np.allclose(y.std(), 0):
            out[(a, b)] = 0.0
        else:
            out[(a, b)] = float(np.corrcoef(x, y)[0, 1])
    return out


@dataclass
class ClusterCountSeries:
    """Problem vs critical cluster counts per epoch (Figure 9)."""

    metric: str
    hours: np.ndarray
    problem_clusters: np.ndarray
    critical_clusters: np.ndarray

    @property
    def mean_reduction_factor(self) -> float:
        """How many times fewer critical clusters there are on average."""
        crit = self.critical_clusters.mean() if self.critical_clusters.size else 0.0
        prob = self.problem_clusters.mean() if self.problem_clusters.size else 0.0
        if crit == 0:
            return float("inf") if prob > 0 else 0.0
        return float(prob / crit)


def cluster_count_timeseries(ma: MetricAnalysis) -> ClusterCountSeries:
    """Figure 9 series for one metric (the paper shows join time)."""
    return ClusterCountSeries(
        metric=ma.metric.name,
        hours=ma.grid.hours(),
        problem_clusters=ma.problem_cluster_counts,
        critical_clusters=ma.critical_cluster_counts,
    )


def problem_session_counts(ma: MetricAnalysis) -> np.ndarray:
    """Raw problem-session counts per epoch (Fig. 13's 'Original')."""
    return ma.series(lambda e: e.total_problems)


def unattributed_problem_counts(ma: MetricAnalysis) -> np.ndarray:
    """Problem sessions outside any critical cluster per epoch.

    The paper's Figure 13 plots these as 'Not in critical clusters' —
    problems that look random and cannot be fixed by addressing
    critical clusters.
    """
    return ma.series(
        lambda e: e.total_problems - e.attributed_problem_sessions
    )
