"""Critical-cluster type breakdown (paper Figure 10).

Figure 10 attributes every problem session to the *type* of critical
cluster that explains it — the combination of attribute dimensions
(e.g. ``[Site, *, *, *, *, *, *]`` or ``[*, CDN, *, ConnectionType, *,
*, *]``) — plus two residual sectors: problem sessions in problem
clusters that no critical cluster explains, and problem sessions
outside any (significant) problem cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.core.pipeline import MetricAnalysis

#: Residual sector labels (mirroring the paper's legend).
NOT_ATTRIBUTED = "Not attributed to critical cluster"
NOT_IN_PROBLEM_CLUSTER = "Not in any problem cluster"


@dataclass
class BreakdownSector:
    """One pie sector: an attribute-type signature and its share."""

    signature: str
    problem_sessions: float
    fraction: float


def signature_label(attributes: tuple[str, ...], schema: AttributeSchema) -> str:
    """Paper-style signature, e.g. ``[Site, *, ASN, *, *, *, *]``."""
    constrained = set(attributes)
    parts = [name if name in constrained else "*" for name in schema.names]
    return "[" + ", ".join(parts) + "]"


def critical_type_breakdown(
    ma: MetricAnalysis,
    schema: AttributeSchema = DEFAULT_SCHEMA,
    max_sectors: int = 8,
) -> list[BreakdownSector]:
    """Figure 10 for one metric.

    Aggregates attributed problem sessions over the whole trace by the
    attribute-type signature of the critical cluster, keeps the top
    ``max_sectors`` signatures, folds the rest into "Other
    combinations", and appends the two residual sectors.
    """
    by_signature: dict[tuple[str, ...], float] = {}
    total_problems = 0.0
    attributed = 0.0
    in_problem_clusters = 0.0
    for epoch in ma.epochs:
        total_problems += epoch.total_problems
        in_problem_clusters += (
            epoch.problem_cluster_coverage * epoch.total_problems
        )
        for key, attribution in epoch.critical_clusters.items():
            sig = key.attributes
            by_signature[sig] = (
                by_signature.get(sig, 0.0) + attribution.attributed_problems
            )
            attributed += attribution.attributed_problems

    if total_problems <= 0:
        return []

    ranked = sorted(by_signature.items(), key=lambda kv: -kv[1])
    sectors = [
        BreakdownSector(
            signature=signature_label(sig, schema),
            problem_sessions=count,
            fraction=count / total_problems,
        )
        for sig, count in ranked[:max_sectors]
    ]
    other = sum(count for _, count in ranked[max_sectors:])
    if other > 0:
        sectors.append(
            BreakdownSector(
                signature="Other combinations",
                problem_sessions=other,
                fraction=other / total_problems,
            )
        )
    unexplained = max(in_problem_clusters - attributed, 0.0)
    outside = max(total_problems - in_problem_clusters, 0.0)
    sectors.append(
        BreakdownSector(
            signature=NOT_ATTRIBUTED,
            problem_sessions=unexplained,
            fraction=unexplained / total_problems,
        )
    )
    sectors.append(
        BreakdownSector(
            signature=NOT_IN_PROBLEM_CLUSTER,
            problem_sessions=outside,
            fraction=outside / total_problems,
        )
    )
    return sectors


def single_attribute_share(
    ma: MetricAnalysis, attributes: tuple[str, ...] = ("site", "cdn", "asn", "connection_type")
) -> dict[str, float]:
    """Share of attributed problem sessions per single-attribute type.

    The paper's headline: Site, CDN, ASN and ConnectionType dominate
    the critical clusters across metrics (Section 4.3).
    """
    totals: dict[str, float] = {a: 0.0 for a in attributes}
    attributed = 0.0
    for epoch in ma.epochs:
        for key, attribution in epoch.critical_clusters.items():
            attributed += attribution.attributed_problems
            if len(key.attributes) == 1 and key.attributes[0] in totals:
                totals[key.attributes[0]] += attribution.attributed_problems
    if attributed == 0:
        return {a: 0.0 for a in attributes}
    return {a: v / attributed for a, v in totals.items()}
