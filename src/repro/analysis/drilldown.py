"""Drill-down diagnosis of a critical cluster (paper Section 6).

The paper's "more diagnostic capabilities" discussion proposes
triggering finer-grained analysis when a critical cluster is observed
(e.g. per-server stats for a CDN cluster). With session telemetry this
translates to conditional slicing: within the cluster's sessions,

* which values of each *other* attribute concentrate the problem mass
  (is the bad CDN bad everywhere, or only toward two ASNs?),
* how the cluster's problem ratio moves over the day (outage vs
  structural), and
* how the cluster's metric distribution compares with the global one.

``drill_down`` computes all three from a trace; the result renders as
the kind of report an operator would attach to an incident.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.render import render_kv, render_series, render_table
from repro.core.clusters import ClusterKey
from repro.core.epoching import EpochGrid
from repro.core.metrics import MetricThresholds, QualityMetric
from repro.core.sessions import SessionTable


@dataclass
class AttributeSlice:
    """Problem concentration for one value of one refining attribute."""

    attribute: str
    value: str
    sessions: int
    problems: int

    @property
    def ratio(self) -> float:
        return self.problems / self.sessions if self.sessions else 0.0


@dataclass
class DrilldownReport:
    """Diagnosis of one cluster for one metric."""

    key: ClusterKey
    metric: str
    cluster_sessions: int
    cluster_problems: int
    global_ratio: float
    slices: dict[str, list[AttributeSlice]] = field(default_factory=dict)
    hourly_ratio: np.ndarray = field(default_factory=lambda: np.zeros(0))
    hours: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def cluster_ratio(self) -> float:
        if self.cluster_sessions == 0:
            return 0.0
        return self.cluster_problems / self.cluster_sessions

    def worst_slices(self, top: int = 3) -> list[AttributeSlice]:
        """The refining slices with the highest problem ratios."""
        flat = [s for slices in self.slices.values() for s in slices]
        flat.sort(key=lambda s: (-s.ratio, -s.problems))
        return flat[:top]

    def concentrated_attributes(self, factor: float = 2.0) -> list[str]:
        """Attributes where some value's ratio is ``factor``x the
        cluster's own ratio — pointers to a deeper cause."""
        out = []
        base = max(self.cluster_ratio, 1e-12)
        for attribute, slices in self.slices.items():
            if any(s.ratio >= factor * base and s.problems > 0 for s in slices):
                out.append(attribute)
        return out

    def render(self, max_values: int = 4) -> str:
        blocks = [
            render_kv(
                {
                    "cluster": self.key.label(),
                    "metric": self.metric,
                    "sessions": self.cluster_sessions,
                    "problem sessions": self.cluster_problems,
                    "cluster problem ratio": self.cluster_ratio,
                    "global problem ratio": self.global_ratio,
                },
                title="Drill-down",
            )
        ]
        for attribute, slices in self.slices.items():
            rows = [
                [s.value, s.sessions, s.problems, s.ratio]
                for s in slices[:max_values]
            ]
            blocks.append(
                render_table(
                    [attribute, "Sessions", "Problems", "Ratio"],
                    rows,
                    title=f"By {attribute} (worst first)",
                )
            )
        if self.hours.size:
            blocks.append(
                render_series(
                    self.hours,
                    {"problem_ratio": self.hourly_ratio},
                    x_label="hour",
                    title="Cluster problem ratio by hour",
                    max_rows=24,
                )
            )
        return "\n\n".join(blocks)


def _cluster_rows(table: SessionTable, key: ClusterKey) -> np.ndarray:
    rows = np.ones(len(table), dtype=bool)
    for attribute, value in key.pairs:
        col = table.schema.index(attribute)
        code = table.code_of(attribute, value)
        if code is None:
            return np.zeros(len(table), dtype=bool)
        rows &= table.codes[:, col] == code
    return rows


def drill_down(
    table: SessionTable,
    key: ClusterKey,
    metric: QualityMetric,
    grid: EpochGrid | None = None,
    thresholds: MetricThresholds | None = None,
    min_slice_sessions: int = 20,
) -> DrilldownReport:
    """Diagnose cluster ``key`` for ``metric`` over a trace."""
    valid = metric.valid_mask(table)
    problems = metric.problem_mask(table, thresholds)
    in_cluster = _cluster_rows(table, key) & valid

    total_valid = int(valid.sum())
    report = DrilldownReport(
        key=key,
        metric=metric.name,
        cluster_sessions=int(in_cluster.sum()),
        cluster_problems=int((problems & in_cluster).sum()),
        global_ratio=float(problems[valid].mean()) if total_valid else 0.0,
    )

    constrained = set(key.attributes)
    for col, attribute in enumerate(table.schema.names):
        if attribute in constrained:
            continue
        codes = table.codes[in_cluster, col]
        probs = problems[in_cluster]
        counts = np.bincount(codes, minlength=len(table.vocabs[col]))
        prob_counts = np.bincount(
            codes, weights=probs.astype(np.float64),
            minlength=len(table.vocabs[col]),
        )
        slices = [
            AttributeSlice(
                attribute=attribute,
                value=table.vocabs[col][code],
                sessions=int(counts[code]),
                problems=int(prob_counts[code]),
            )
            for code in np.nonzero(counts >= min_slice_sessions)[0]
        ]
        slices.sort(key=lambda s: (-s.ratio, -s.sessions))
        if slices:
            report.slices[attribute] = slices

    if grid is not None and grid.n_epochs:
        epochs = grid.epoch_of(table.start_time)
        sessions_per_epoch = np.zeros(grid.n_epochs)
        problems_per_epoch = np.zeros(grid.n_epochs)
        rows = in_cluster & (epochs >= 0) & (epochs < grid.n_epochs)
        np.add.at(sessions_per_epoch, epochs[rows], 1.0)
        np.add.at(problems_per_epoch, epochs[rows], problems[rows].astype(float))
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(
                sessions_per_epoch > 0, problems_per_epoch / sessions_per_epoch, 0.0
            )
        report.hourly_ratio = ratio
        report.hours = grid.hours()
    return report
