"""Plain-text rendering of tables and figure series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output uniform. No plotting dependencies —
series render as aligned columns suitable for eyeballing shapes and
for diffing across runs.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np


def fmt(value, precision: int = 3) -> str:
    """Format one cell: floats to ``precision``, the rest via str()."""
    if isinstance(value, (bool, np.bool_)):
        return str(bool(value))
    if isinstance(value, (float, np.floating)):
        if np.isnan(value):
            return "nan"
        return f"{value:.{precision}f}"
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    str_rows = [[fmt(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
    precision: int = 3,
    title: str | None = None,
    max_rows: int | None = None,
) -> str:
    """Render one or more y-series against a shared x column."""
    x = list(x)
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, x has {len(x)}"
            )
    rows = [
        [x[i]] + [series[name][i] for name in series] for i in range(len(x))
    ]
    if max_rows is not None and len(rows) > max_rows:
        step = max(len(rows) // max_rows, 1)
        rows = rows[::step]
    return render_table(
        [x_label, *series.keys()], rows, precision=precision, title=title
    )


def render_kv(
    pairs: Mapping[str, object], precision: int = 3, title: str | None = None
) -> str:
    """Render a key/value block."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    for key, value in pairs.items():
        lines.append(f"{key.ljust(width)}  {fmt(value, precision)}")
    return "\n".join(lines)
