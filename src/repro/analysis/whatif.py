"""What-if improvement analyses (paper Section 5).

"Fixing" a critical cluster means reducing the problem ratio of the
problem sessions attributed to it down to the epoch's global average
problem ratio — the paper's model of the best achievable outcome given
unavoidable background problems. Because the phase-transition
attribution partitions leaf combinations across critical clusters,
alleviations of different clusters in the same epoch never double
count.

Three strategies are simulated:

* **oracle** top-k fixing (Figure 11): rank critical-cluster
  identities by prevalence, persistence or coverage over the whole
  trace and fix the top fraction in every epoch they were flagged;
* **proactive** (Table 4): pick the top 1% on a historical window and
  fix them in future epochs;
* **reactive** (Figure 13, Table 5): watch streaks of critical
  clusters and fix each from its second hour (a 1-epoch detection
  delay) until it disappears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.clusters import ClusterKey
from repro.core.pipeline import EpochAnalysis, MetricAnalysis

#: Ranking criteria for choosing which critical clusters to fix.
RANKINGS: tuple[str, ...] = ("coverage", "prevalence", "persistence")


def cluster_alleviation(epoch: EpochAnalysis, key: ClusterKey) -> float:
    """Problem sessions removed by fixing ``key`` in ``epoch``.

    Fixing reduces the attributed sessions' problem ratio to the
    epoch's global average: the alleviation is the attributed problem
    mass in excess of that baseline.
    """
    attribution = epoch.critical_clusters.get(key)
    if attribution is None:
        return 0.0
    baseline = epoch.global_ratio * attribution.attributed_sessions
    return max(attribution.attributed_problems - baseline, 0.0)


@dataclass(frozen=True)
class AlleviationIndex:
    """Per-(critical identity, epoch) alleviation, computed once.

    Every what-if strategy in this module reduces to sums over the
    same quantity — the alleviation of cluster ``k`` in epoch ``e`` —
    so one pass over the critical-cluster dicts builds a dense
    (identities x epochs) matrix and all strategies become array
    reductions: the oracle and top-k curves consume the per-key row
    sums (:attr:`totals`), the reactive simulation runs a run-length
    recurrence over :attr:`flagged` columns. Cached per
    :class:`MetricAnalysis` via :func:`alleviation_index`.
    """

    keys: tuple[ClusterKey, ...]
    key_index: dict[ClusterKey, int]
    #: (n_keys, n_epochs) alleviation; 0 where the key is not critical.
    value: np.ndarray
    #: (n_keys, n_epochs) True where the key is critical in the epoch.
    flagged: np.ndarray

    @property
    def totals(self) -> dict[ClusterKey, float]:
        """Total alleviation per identity across all epochs."""
        sums = self.value.sum(axis=1)
        return {key: float(sums[i]) for i, key in enumerate(self.keys)}


def alleviation_index(ma: MetricAnalysis) -> AlleviationIndex:
    """The metric's :class:`AlleviationIndex` (built once, cached).

    The cache lives on the ``MetricAnalysis`` instance itself (like its
    timeline caches), so train/test views from ``restrict_epochs`` get
    independent indexes.
    """
    cached = getattr(ma, "_whatif_alleviation", None)
    if cached is not None:
        return cached
    n_epochs = len(ma.epochs)
    key_index: dict[ClusterKey, int] = {}
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for e, epoch in enumerate(ma.epochs):
        g = epoch.global_ratio
        for key, att in epoch.critical_clusters.items():
            k = key_index.setdefault(key, len(key_index))
            rows.append(k)
            cols.append(e)
            vals.append(
                max(att.attributed_problems - g * att.attributed_sessions, 0.0)
            )
    value = np.zeros((len(key_index), n_epochs))
    flagged = np.zeros((len(key_index), n_epochs), dtype=bool)
    if rows:
        value[rows, cols] = vals
        flagged[rows, cols] = True
    index = AlleviationIndex(
        keys=tuple(key_index),
        key_index=key_index,
        value=value,
        flagged=flagged,
    )
    ma._whatif_alleviation = index
    return index


def rank_critical_clusters(ma: MetricAnalysis, by: str = "coverage") -> list[ClusterKey]:
    """Critical identities ranked by the chosen criterion (best first).

    Coverage ties (and the volume-agnostic criteria) break toward the
    higher total attribution so rankings are deterministic.
    """
    totals = ma.critical_attribution_totals()
    if by == "coverage":
        scored = [(v, 0.0, k) for k, v in totals.items()]
    elif by in ("prevalence", "persistence"):
        timelines = ma.critical_timelines()
        scored = []
        for key, tl in timelines.items():
            primary = tl.prevalence if by == "prevalence" else tl.max_persistence
            scored.append((primary, totals.get(key, 0.0), key))
    else:
        raise ValueError(f"unknown ranking {by!r}; known: {RANKINGS}")
    scored.sort(key=lambda t: (-t[0], -t[1], repr(t[2])))
    return [key for _, _, key in scored]


def oracle_improvement(
    ma: MetricAnalysis, chosen: Iterable[ClusterKey]
) -> float:
    """Fraction of all problem sessions alleviated by fixing ``chosen``
    in every epoch where they appear as critical clusters."""
    total = ma.total_problem_sessions
    if total == 0:
        return 0.0
    index = alleviation_index(ma)
    rows = [index.key_index[k] for k in set(chosen) if k in index.key_index]
    if not rows:
        return 0.0
    return float(index.value[rows].sum()) / total


@dataclass
class ImprovementCurve:
    """Improvement vs top-fraction-of-clusters-fixed (one Fig. 11 line)."""

    metric: str
    ranking: str
    fractions: np.ndarray
    improvement: np.ndarray

    def at_fraction(self, fraction: float) -> float:
        """Improvement at the smallest tabulated fraction >= ``fraction``."""
        idx = int(np.searchsorted(self.fractions, fraction))
        idx = min(idx, self.fractions.size - 1)
        return float(self.improvement[idx])


#: Default sweep matching Figure 11's log x-axis.
DEFAULT_FRACTIONS = np.logspace(-4, 0, 17)


def topk_improvement_curve(
    ma: MetricAnalysis,
    by: str = "coverage",
    fractions: Sequence[float] | None = None,
) -> ImprovementCurve:
    """Figure 11: improvement from fixing the top-k critical clusters."""
    fracs = np.asarray(
        DEFAULT_FRACTIONS if fractions is None else fractions, dtype=np.float64
    )
    ranked = rank_critical_clusters(ma, by=by)
    n = len(ranked)
    total = ma.total_problem_sessions

    # Cumulative alleviation per rank, from the shared accumulator.
    per_key = alleviation_index(ma).totals
    cumulative = np.cumsum([per_key[key] for key in ranked]) if n else np.array([])

    improvement = np.zeros(fracs.size)
    for i, frac in enumerate(fracs):
        k = min(max(int(round(frac * n)), 1), n) if n else 0
        if k and total:
            improvement[i] = cumulative[k - 1] / total
    return ImprovementCurve(
        metric=ma.metric.name, ranking=by, fractions=fracs, improvement=improvement
    )


def attribute_restricted_curves(
    ma: MetricAnalysis,
    fractions: Sequence[float] | None = None,
) -> dict[str, ImprovementCurve]:
    """Figure 12: heuristic selection restricted to specific attributes.

    Compares fixing only Site / ASN / CDN / ConnectionType critical
    clusters (and their union) against considering every critical
    cluster ("Any"). The x-axis is normalised by the *total* number of
    critical clusters, as in the paper, so restricted families exhaust
    early.
    """
    fracs = np.asarray(
        DEFAULT_FRACTIONS if fractions is None else fractions, dtype=np.float64
    )
    ranked = rank_critical_clusters(ma, by="coverage")
    n_total = len(ranked)
    total = ma.total_problem_sessions

    per_key = alleviation_index(ma).totals

    union_attrs = ("site", "cdn", "asn", "connection_type")
    families: dict[str, Callable[[ClusterKey], bool]] = {
        "Any": lambda key: True,
        "{Site, CDN, ASN, ConnType}": lambda key: all(
            a in union_attrs for a in key.attributes
        ),
        "Site": lambda key: key.attributes == ("site",),
        "ASN": lambda key: key.attributes == ("asn",),
        "ConnType": lambda key: key.attributes == ("connection_type",),
        "CDN": lambda key: key.attributes == ("cdn",),
    }

    curves: dict[str, ImprovementCurve] = {}
    for label, predicate in families.items():
        family = [key for key in ranked if predicate(key)]
        cumulative = np.cumsum([per_key[key] for key in family])
        improvement = np.zeros(fracs.size)
        for i, frac in enumerate(fracs):
            k = min(int(round(frac * n_total)), len(family))
            if k and total:
                improvement[i] = cumulative[k - 1] / total
        curves[label] = ImprovementCurve(
            metric=ma.metric.name,
            ranking=f"coverage/{label}",
            fractions=fracs,
            improvement=improvement,
        )
    return curves


@dataclass
class ProactiveResult:
    """Table 4 cell: history-based fixing vs the oracle potential.

    ``potential`` uses the paper's procedure — rank the *test* window's
    clusters by attributed problem sessions and fix the top fraction.
    That ranking optimises attribution, not alleviation, so
    ``improvement`` can marginally exceed ``potential`` when the
    history-chosen set happens to alleviate more.
    """

    metric: str
    improvement: float  # "New" in the paper's Table 4
    potential: float

    @property
    def fraction_of_potential(self) -> float:
        if self.potential == 0:
            return 0.0
        return self.improvement / self.potential


def proactive_simulation(
    train: MetricAnalysis,
    test: MetricAnalysis,
    top_fraction: float = 0.01,
    by: str = "coverage",
    min_clusters: int = 1,
) -> ProactiveResult:
    """Proactive strategy (Section 5.2).

    Pick the top ``top_fraction`` critical identities on the training
    window, fix them wherever they recur in the test window; compare
    with the potential of picking the top fraction on the test window
    itself.

    ``min_clusters`` floors the selection size: the paper's 1% of tens
    of thousands of identities selects hundreds of clusters, whereas 1%
    of a synthetic trace's few hundred identities would select exactly
    one and make the comparison a coin flip. A floor of ~5 keeps the
    experiment meaningful at small scale without changing its paper
    semantics at large scale.
    """
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    if min_clusters < 1:
        raise ValueError("min_clusters must be >= 1")

    def top(ma: MetricAnalysis) -> list[ClusterKey]:
        ranked = rank_critical_clusters(ma, by=by)
        if not ranked:
            return []
        k = max(int(round(top_fraction * len(ranked))), min_clusters)
        return ranked[:k]

    improvement = oracle_improvement(test, top(train))
    potential = oracle_improvement(test, top(test))
    return ProactiveResult(
        metric=test.metric.name, improvement=improvement, potential=potential
    )


@dataclass
class ReactiveResult:
    """Reactive-strategy outcome (Figure 13 series + Table 5 numbers)."""

    metric: str
    detection_delay_epochs: int
    improvement: float  # "New" in Table 5
    potential: float  # zero-delay upper bound
    original_series: np.ndarray  # problem sessions per epoch
    after_series: np.ndarray  # problem sessions after reactive fixing
    unattributed_series: np.ndarray  # 'Not in critical clusters'

    @property
    def fraction_of_potential(self) -> float:
        if self.potential == 0:
            return 0.0
        return self.improvement / self.potential


def _streak_alleviation(
    ma: MetricAnalysis, detection_delay: int
) -> np.ndarray:
    """Per-epoch alleviated problem mass under a detection delay.

    A cluster's alleviation counts in epoch ``e`` iff its current
    critical streak has run for more than ``detection_delay`` epochs at
    ``e`` — i.e. the run length of consecutive flagged epochs ending at
    ``e`` is at least ``delay + 1``. Instead of enumerating streaks per
    key (the old triple loop), carry the run lengths of *all* keys
    forward with one vector recurrence per epoch and sum the
    alleviation of eligible keys columnwise.
    """
    index = alleviation_index(ma)
    n_keys, n_epochs = index.flagged.shape
    alleviated = np.zeros(n_epochs)
    if n_keys == 0:
        return alleviated
    run = np.zeros(n_keys, dtype=np.int64)
    for e in range(n_epochs):
        run = (run + 1) * index.flagged[:, e]
        alleviated[e] = index.value[run > detection_delay, e].sum()
    return alleviated


def reactive_simulation(
    ma: MetricAnalysis, detection_delay_epochs: int = 1
) -> ReactiveResult:
    """Reactive strategy (Section 5.3).

    A critical cluster is detected after it has been flagged for
    ``detection_delay_epochs`` consecutive epochs; remedial action then
    holds for the rest of that streak.
    """
    if detection_delay_epochs < 0:
        raise ValueError("detection delay must be non-negative")
    original = ma.series(lambda e: e.total_problems)
    unattributed = ma.series(
        lambda e: e.total_problems - e.attributed_problem_sessions
    )
    alleviated = _streak_alleviation(ma, detection_delay_epochs)
    potential_alleviated = _streak_alleviation(ma, 0)
    total = ma.total_problem_sessions
    return ReactiveResult(
        metric=ma.metric.name,
        detection_delay_epochs=detection_delay_epochs,
        improvement=float(alleviated.sum()) / total if total else 0.0,
        potential=float(potential_alleviated.sum()) / total if total else 0.0,
        original_series=original,
        after_series=original - alleviated,
        unattributed_series=unattributed,
    )
