"""What-if improvement analyses (paper Section 5).

"Fixing" a critical cluster means reducing the problem ratio of the
problem sessions attributed to it down to the epoch's global average
problem ratio — the paper's model of the best achievable outcome given
unavoidable background problems. Because the phase-transition
attribution partitions leaf combinations across critical clusters,
alleviations of different clusters in the same epoch never double
count.

Three strategies are simulated:

* **oracle** top-k fixing (Figure 11): rank critical-cluster
  identities by prevalence, persistence or coverage over the whole
  trace and fix the top fraction in every epoch they were flagged;
* **proactive** (Table 4): pick the top 1% on a historical window and
  fix them in future epochs;
* **reactive** (Figure 13, Table 5): watch streaks of critical
  clusters and fix each from its second hour (a 1-epoch detection
  delay) until it disappears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.clusters import ClusterKey
from repro.core.pipeline import EpochAnalysis, MetricAnalysis

#: Ranking criteria for choosing which critical clusters to fix.
RANKINGS: tuple[str, ...] = ("coverage", "prevalence", "persistence")


def cluster_alleviation(epoch: EpochAnalysis, key: ClusterKey) -> float:
    """Problem sessions removed by fixing ``key`` in ``epoch``.

    Fixing reduces the attributed sessions' problem ratio to the
    epoch's global average: the alleviation is the attributed problem
    mass in excess of that baseline.
    """
    attribution = epoch.critical_clusters.get(key)
    if attribution is None:
        return 0.0
    baseline = epoch.global_ratio * attribution.attributed_sessions
    return max(attribution.attributed_problems - baseline, 0.0)


def rank_critical_clusters(ma: MetricAnalysis, by: str = "coverage") -> list[ClusterKey]:
    """Critical identities ranked by the chosen criterion (best first).

    Coverage ties (and the volume-agnostic criteria) break toward the
    higher total attribution so rankings are deterministic.
    """
    totals = ma.critical_attribution_totals()
    if by == "coverage":
        scored = [(v, 0.0, k) for k, v in totals.items()]
    elif by in ("prevalence", "persistence"):
        timelines = ma.critical_timelines()
        scored = []
        for key, tl in timelines.items():
            primary = tl.prevalence if by == "prevalence" else tl.max_persistence
            scored.append((primary, totals.get(key, 0.0), key))
    else:
        raise ValueError(f"unknown ranking {by!r}; known: {RANKINGS}")
    scored.sort(key=lambda t: (-t[0], -t[1], repr(t[2])))
    return [key for _, _, key in scored]


def oracle_improvement(
    ma: MetricAnalysis, chosen: Iterable[ClusterKey]
) -> float:
    """Fraction of all problem sessions alleviated by fixing ``chosen``
    in every epoch where they appear as critical clusters."""
    chosen = set(chosen)
    total = ma.total_problem_sessions
    if total == 0:
        return 0.0
    alleviated = 0.0
    for epoch in ma.epochs:
        for key in chosen & set(epoch.critical_clusters):
            alleviated += cluster_alleviation(epoch, key)
    return alleviated / total


@dataclass
class ImprovementCurve:
    """Improvement vs top-fraction-of-clusters-fixed (one Fig. 11 line)."""

    metric: str
    ranking: str
    fractions: np.ndarray
    improvement: np.ndarray

    def at_fraction(self, fraction: float) -> float:
        """Improvement at the smallest tabulated fraction >= ``fraction``."""
        idx = int(np.searchsorted(self.fractions, fraction))
        idx = min(idx, self.fractions.size - 1)
        return float(self.improvement[idx])


#: Default sweep matching Figure 11's log x-axis.
DEFAULT_FRACTIONS = np.logspace(-4, 0, 17)


def topk_improvement_curve(
    ma: MetricAnalysis,
    by: str = "coverage",
    fractions: Sequence[float] | None = None,
) -> ImprovementCurve:
    """Figure 11: improvement from fixing the top-k critical clusters."""
    fracs = np.asarray(
        DEFAULT_FRACTIONS if fractions is None else fractions, dtype=np.float64
    )
    ranked = rank_critical_clusters(ma, by=by)
    n = len(ranked)
    total = ma.total_problem_sessions

    # Cumulative alleviation per rank, computed once.
    per_key = {key: 0.0 for key in ranked}
    for epoch in ma.epochs:
        for key in epoch.critical_clusters:
            if key in per_key:
                per_key[key] += cluster_alleviation(epoch, key)
    cumulative = np.cumsum([per_key[key] for key in ranked]) if n else np.array([])

    improvement = np.zeros(fracs.size)
    for i, frac in enumerate(fracs):
        k = min(max(int(round(frac * n)), 1), n) if n else 0
        if k and total:
            improvement[i] = cumulative[k - 1] / total
    return ImprovementCurve(
        metric=ma.metric.name, ranking=by, fractions=fracs, improvement=improvement
    )


def attribute_restricted_curves(
    ma: MetricAnalysis,
    fractions: Sequence[float] | None = None,
) -> dict[str, ImprovementCurve]:
    """Figure 12: heuristic selection restricted to specific attributes.

    Compares fixing only Site / ASN / CDN / ConnectionType critical
    clusters (and their union) against considering every critical
    cluster ("Any"). The x-axis is normalised by the *total* number of
    critical clusters, as in the paper, so restricted families exhaust
    early.
    """
    fracs = np.asarray(
        DEFAULT_FRACTIONS if fractions is None else fractions, dtype=np.float64
    )
    ranked = rank_critical_clusters(ma, by="coverage")
    n_total = len(ranked)
    total = ma.total_problem_sessions

    per_key = {key: 0.0 for key in ranked}
    for epoch in ma.epochs:
        for key in epoch.critical_clusters:
            if key in per_key:
                per_key[key] += cluster_alleviation(epoch, key)

    union_attrs = ("site", "cdn", "asn", "connection_type")
    families: dict[str, Callable[[ClusterKey], bool]] = {
        "Any": lambda key: True,
        "{Site, CDN, ASN, ConnType}": lambda key: all(
            a in union_attrs for a in key.attributes
        ),
        "Site": lambda key: key.attributes == ("site",),
        "ASN": lambda key: key.attributes == ("asn",),
        "ConnType": lambda key: key.attributes == ("connection_type",),
        "CDN": lambda key: key.attributes == ("cdn",),
    }

    curves: dict[str, ImprovementCurve] = {}
    for label, predicate in families.items():
        family = [key for key in ranked if predicate(key)]
        cumulative = np.cumsum([per_key[key] for key in family])
        improvement = np.zeros(fracs.size)
        for i, frac in enumerate(fracs):
            k = min(int(round(frac * n_total)), len(family))
            if k and total:
                improvement[i] = cumulative[k - 1] / total
        curves[label] = ImprovementCurve(
            metric=ma.metric.name,
            ranking=f"coverage/{label}",
            fractions=fracs,
            improvement=improvement,
        )
    return curves


@dataclass
class ProactiveResult:
    """Table 4 cell: history-based fixing vs the oracle potential.

    ``potential`` uses the paper's procedure — rank the *test* window's
    clusters by attributed problem sessions and fix the top fraction.
    That ranking optimises attribution, not alleviation, so
    ``improvement`` can marginally exceed ``potential`` when the
    history-chosen set happens to alleviate more.
    """

    metric: str
    improvement: float  # "New" in the paper's Table 4
    potential: float

    @property
    def fraction_of_potential(self) -> float:
        if self.potential == 0:
            return 0.0
        return self.improvement / self.potential


def proactive_simulation(
    train: MetricAnalysis,
    test: MetricAnalysis,
    top_fraction: float = 0.01,
    by: str = "coverage",
    min_clusters: int = 1,
) -> ProactiveResult:
    """Proactive strategy (Section 5.2).

    Pick the top ``top_fraction`` critical identities on the training
    window, fix them wherever they recur in the test window; compare
    with the potential of picking the top fraction on the test window
    itself.

    ``min_clusters`` floors the selection size: the paper's 1% of tens
    of thousands of identities selects hundreds of clusters, whereas 1%
    of a synthetic trace's few hundred identities would select exactly
    one and make the comparison a coin flip. A floor of ~5 keeps the
    experiment meaningful at small scale without changing its paper
    semantics at large scale.
    """
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    if min_clusters < 1:
        raise ValueError("min_clusters must be >= 1")

    def top(ma: MetricAnalysis) -> list[ClusterKey]:
        ranked = rank_critical_clusters(ma, by=by)
        if not ranked:
            return []
        k = max(int(round(top_fraction * len(ranked))), min_clusters)
        return ranked[:k]

    improvement = oracle_improvement(test, top(train))
    potential = oracle_improvement(test, top(test))
    return ProactiveResult(
        metric=test.metric.name, improvement=improvement, potential=potential
    )


@dataclass
class ReactiveResult:
    """Reactive-strategy outcome (Figure 13 series + Table 5 numbers)."""

    metric: str
    detection_delay_epochs: int
    improvement: float  # "New" in Table 5
    potential: float  # zero-delay upper bound
    original_series: np.ndarray  # problem sessions per epoch
    after_series: np.ndarray  # problem sessions after reactive fixing
    unattributed_series: np.ndarray  # 'Not in critical clusters'

    @property
    def fraction_of_potential(self) -> float:
        if self.potential == 0:
            return 0.0
        return self.improvement / self.potential


def _streak_alleviation(
    ma: MetricAnalysis, detection_delay: int
) -> np.ndarray:
    """Per-epoch alleviated problem mass under a detection delay."""
    alleviated = np.zeros(len(ma.epochs))
    for key, timeline in ma.critical_timelines().items():
        for streak in timeline.streaks():
            for epoch in range(streak.start + detection_delay, streak.end):
                alleviated[epoch] += cluster_alleviation(ma.epochs[epoch], key)
    return alleviated


def reactive_simulation(
    ma: MetricAnalysis, detection_delay_epochs: int = 1
) -> ReactiveResult:
    """Reactive strategy (Section 5.3).

    A critical cluster is detected after it has been flagged for
    ``detection_delay_epochs`` consecutive epochs; remedial action then
    holds for the rest of that streak.
    """
    if detection_delay_epochs < 0:
        raise ValueError("detection delay must be non-negative")
    original = ma.series(lambda e: e.total_problems)
    unattributed = ma.series(
        lambda e: e.total_problems - e.attributed_problem_sessions
    )
    alleviated = _streak_alleviation(ma, detection_delay_epochs)
    potential_alleviated = _streak_alleviation(ma, 0)
    total = ma.total_problem_sessions
    return ReactiveResult(
        metric=ma.metric.name,
        detection_delay_epochs=detection_delay_epochs,
        improvement=float(alleviated.sum()) / total if total else 0.0,
        potential=float(potential_alleviated.sum()) / total if total else 0.0,
        original_series=original,
        after_series=original - alleviated,
        unattributed_series=unattributed,
    )
