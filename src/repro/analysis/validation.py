"""Ground-truth validation of the critical-cluster detector.

The paper could only speculate about root causes (Section 4.3's
"illustrative and somewhat speculative" disclaimer). The synthetic
substrate lets us do better: every planted event has a known attribute
combination and activity window, so we can score the detector —
per-event recall (was the event's exact cluster flagged critical while
active?) and top-k precision (how many of the highest-coverage
critical clusters correspond to planted events?).

A detection is counted for an event when the critical cluster's key
equals the event's key, or is a superset/subset of it that still pins
the same principal (e.g. detecting ``[site=X, cdn=Y]`` for a planted
``[site=X]`` event counts as a *relaxed* match).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clusters import ClusterKey
from repro.core.pipeline import MetricAnalysis, TraceAnalysis
from repro.trace.events import EventCatalog, GroundTruthEvent


def keys_related(detected: ClusterKey, planted: ClusterKey) -> bool:
    """Exact, ancestor or descendant relationship between keys."""
    return (
        detected == planted
        or detected.is_ancestor_of(planted)
        or planted.is_ancestor_of(detected)
    )


@dataclass
class EventRecovery:
    """Detection outcome for one planted event.

    ``detectable_epochs`` counts active epochs in which the event's
    cluster was large enough to pass the significance floor at all —
    an event on an unpopular entity can be invisible *by design* (its
    problem sessions fall outside any significant cluster, exactly the
    paper's uncovered residue), and recall is fairer measured over the
    detectable epochs.
    """

    event: GroundTruthEvent
    active_epochs: int
    exact_detected_epochs: int
    relaxed_detected_epochs: int
    detectable_epochs: int | None = None
    exact_detected_detectable: int = 0

    @property
    def exact_recall(self) -> float:
        if self.active_epochs == 0:
            return 0.0
        return self.exact_detected_epochs / self.active_epochs

    @property
    def relaxed_recall(self) -> float:
        if self.active_epochs == 0:
            return 0.0
        return self.relaxed_detected_epochs / self.active_epochs

    @property
    def detectable_recall(self) -> float | None:
        """Recall over epochs where the cluster met the size floor."""
        if self.detectable_epochs is None:
            return None
        if self.detectable_epochs == 0:
            return 0.0
        return self.exact_detected_detectable / self.detectable_epochs

    @property
    def detected(self) -> bool:
        """Detected in at least one active epoch (exact key)."""
        return self.exact_detected_epochs > 0

    @property
    def detectable(self) -> bool:
        """Large enough to be found in at least one active epoch."""
        return self.detectable_epochs is None or self.detectable_epochs > 0


@dataclass
class ValidationReport:
    """Detector scores for one metric against the planted catalogue."""

    metric: str
    recoveries: list[EventRecovery] = field(default_factory=list)
    top_k: int = 0
    top_k_exact_matches: int = 0
    top_k_relaxed_matches: int = 0

    @property
    def n_events(self) -> int:
        return len(self.recoveries)

    @property
    def event_recall(self) -> float:
        """Fraction of planted events detected at least once."""
        if not self.recoveries:
            return 0.0
        return sum(r.detected for r in self.recoveries) / len(self.recoveries)

    @property
    def mean_epoch_recall(self) -> float:
        if not self.recoveries:
            return 0.0
        return float(np.mean([r.exact_recall for r in self.recoveries]))

    @property
    def detectable_event_recall(self) -> float:
        """Event recall restricted to events that were ever detectable."""
        detectable = [r for r in self.recoveries if r.detectable]
        if not detectable:
            return 0.0
        return sum(r.detected for r in detectable) / len(detectable)

    @property
    def mean_detectable_epoch_recall(self) -> float:
        values = [
            r.detectable_recall
            for r in self.recoveries
            if r.detectable_recall is not None and r.detectable_epochs
        ]
        if not values:
            return 0.0
        return float(np.mean(values))

    @property
    def top_k_precision(self) -> float:
        """Fraction of top-k critical clusters matching planted events."""
        if self.top_k == 0:
            return 0.0
        return self.top_k_exact_matches / self.top_k

    @property
    def top_k_relaxed_precision(self) -> float:
        if self.top_k == 0:
            return 0.0
        return self.top_k_relaxed_matches / self.top_k


def _event_cluster_sizes(table, grid, event: GroundTruthEvent) -> np.ndarray:
    """Session count of the event's cluster per epoch."""
    rows = np.ones(len(table), dtype=bool)
    for attr, label in event.constraints:
        col = table.schema.index(attr)
        code = table.code_of(attr, label)
        if code is None:
            return np.zeros(grid.n_epochs, dtype=np.int64)
        rows &= table.codes[:, col] == code
    epochs = grid.epoch_of(table.start_time[rows])
    epochs = epochs[(epochs >= 0) & (epochs < grid.n_epochs)]
    return np.bincount(epochs, minlength=grid.n_epochs)


def validate_metric(
    ma: MetricAnalysis,
    catalog: EventCatalog,
    top_k: int = 20,
    table=None,
    grid=None,
) -> ValidationReport:
    """Score the detector for one metric.

    Only events whose *primary metric* is this metric are scored for
    recall (a bitrate event is not expected to surface as a join-time
    critical cluster — the paper's Table 2 finds precisely this
    decoupling). With ``table``/``grid`` supplied, detectability-aware
    recall is also computed.
    """
    n_epochs = len(ma.epochs)
    report = ValidationReport(metric=ma.metric.name)
    per_epoch_keys = [set(e.critical_clusters) for e in ma.epochs]

    for event in catalog.by_metric(ma.metric.name):
        active = event.active_epochs(n_epochs)
        key = event.cluster_key
        sizes = None
        if table is not None and grid is not None:
            sizes = _event_cluster_sizes(table, grid, event)
        exact = 0
        relaxed = 0
        detectable = 0
        exact_detectable = 0
        for epoch in np.nonzero(active)[0]:
            keys = per_epoch_keys[epoch]
            hit = key in keys
            if hit:
                exact += 1
                relaxed += 1
            elif any(keys_related(d, key) for d in keys):
                relaxed += 1
            if sizes is not None:
                if sizes[epoch] >= ma.epochs[epoch].min_sessions:
                    detectable += 1
                    if hit:
                        exact_detectable += 1
        report.recoveries.append(
            EventRecovery(
                event=event,
                active_epochs=int(active.sum()),
                exact_detected_epochs=exact,
                relaxed_detected_epochs=relaxed,
                detectable_epochs=detectable if sizes is not None else None,
                exact_detected_detectable=exact_detectable,
            )
        )

    # Precision of the top-k coverage ranking against the full
    # catalogue (any metric: a severe bitrate event can legitimately
    # also surface in buffering).
    totals = ma.critical_attribution_totals()
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    planted = {e.cluster_key for e in catalog}
    top = [key for key, _ in ranked[:top_k]]
    report.top_k = len(top)
    report.top_k_exact_matches = sum(key in planted for key in top)
    report.top_k_relaxed_matches = sum(
        any(keys_related(key, p) for p in planted) for key in top
    )
    return report


def validate_all(
    analysis: TraceAnalysis,
    catalog: EventCatalog,
    top_k: int = 20,
    table=None,
) -> dict[str, ValidationReport]:
    """Validation reports for every analysed metric."""
    grid = analysis.grid if table is not None else None
    return {
        name: validate_metric(ma, catalog, top_k=top_k, table=table, grid=grid)
        for name, ma in analysis.metrics.items()
    }
