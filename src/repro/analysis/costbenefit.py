"""Cost-aware what-if analysis (paper Section 6, "cost of remedial
measures").

The paper's improvement analysis is cost-agnostic and explicitly flags
a cost-benefit variant as future work. This module supplies one: every
critical cluster carries a *fix cost* and the selection greedily
maximises alleviated problem sessions per unit cost, producing an
improvement-vs-budget curve to compare against the cost-blind coverage
ranking.

Cost model (pluggable): fixing a cluster disrupts or re-provisions the
sessions attributed to it, so the default cost is

``cost = base_cost + session_cost * attributed_sessions``

with per-attribute-type base costs reflecting that e.g. contracting an
extra CDN is cheaper than re-engineering an ISP (the paper's examples:
"contract local CDN operators", "offer finer-grained bitrates").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.analysis.whatif import cluster_alleviation
from repro.core.clusters import ClusterKey
from repro.core.pipeline import MetricAnalysis

#: Default relative base costs per attribute type: remedies that the
#: paper calls "simple and well known" (site-side fixes, CDN
#: contracts) are cheap; client-side ISP problems are expensive.
DEFAULT_BASE_COSTS: dict[str, float] = {
    "site": 1.0,
    "cdn": 2.0,
    "connection_type": 4.0,
    "asn": 6.0,
}
#: Base cost for combination clusters / other attribute types.
DEFAULT_OTHER_BASE_COST = 8.0
#: Cost per attributed session (disruption / re-provisioning).
DEFAULT_SESSION_COST = 0.001


@dataclass(frozen=True)
class CostModel:
    """Pluggable fix-cost model for critical clusters."""

    base_costs: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_BASE_COSTS)
    )
    other_base_cost: float = DEFAULT_OTHER_BASE_COST
    session_cost: float = DEFAULT_SESSION_COST

    def cost_of(self, key: ClusterKey, attributed_sessions: float) -> float:
        if key.depth == 1:
            base = self.base_costs.get(key.attributes[0], self.other_base_cost)
        else:
            base = self.other_base_cost
        return base + self.session_cost * attributed_sessions


@dataclass
class BudgetPoint:
    """One point on the improvement-vs-budget curve."""

    budget: float
    spent: float
    n_fixed: int
    improvement: float


@dataclass
class CostBenefitResult:
    """Greedy cost-aware selection vs the cost-blind coverage ranking."""

    metric: str
    budgets: np.ndarray
    cost_aware: list[BudgetPoint]
    cost_blind: list[BudgetPoint]

    def advantage_at(self, index: int) -> float:
        """Improvement gap (aware - blind) at budget index ``index``."""
        return (
            self.cost_aware[index].improvement
            - self.cost_blind[index].improvement
        )


def _cluster_economics(
    ma: MetricAnalysis, cost_model: CostModel
) -> list[tuple[ClusterKey, float, float]]:
    """Per critical identity: (key, total alleviation, fix cost)."""
    alleviation: dict[ClusterKey, float] = {}
    sessions: dict[ClusterKey, float] = {}
    for epoch in ma.epochs:
        for key, attribution in epoch.critical_clusters.items():
            alleviation[key] = alleviation.get(key, 0.0) + cluster_alleviation(
                epoch, key
            )
            sessions[key] = sessions.get(key, 0.0) + attribution.attributed_sessions
    return [
        (key, gain, cost_model.cost_of(key, sessions[key]))
        for key, gain in alleviation.items()
    ]


def _select_under_budgets(
    economics: list[tuple[ClusterKey, float, float]],
    order_key: Callable[[tuple[ClusterKey, float, float]], float],
    budgets: np.ndarray,
    total_problems: int,
    greedy_fill: bool,
) -> list[BudgetPoint]:
    """Fix clusters in ranked order subject to each budget.

    ``greedy_fill=True`` skips unaffordable items and keeps filling
    with cheaper ones (the cost-aware strategy); ``False`` takes the
    ranking as a strict prefix and stops at the first item that does
    not fit — the behaviour of an operator who ranks by impact alone.
    """
    ranked = sorted(economics, key=order_key)
    points = []
    for budget in budgets:
        spent = 0.0
        gained = 0.0
        fixed = 0
        for _, gain, cost in ranked:
            if spent + cost > budget:
                if greedy_fill:
                    continue  # cheaper items may still fit
                break
            spent += cost
            gained += gain
            fixed += 1
        points.append(
            BudgetPoint(
                budget=float(budget),
                spent=spent,
                n_fixed=fixed,
                improvement=gained / total_problems if total_problems else 0.0,
            )
        )
    return points


def cost_benefit_analysis(
    ma: MetricAnalysis,
    cost_model: CostModel | None = None,
    budgets: np.ndarray | None = None,
) -> CostBenefitResult:
    """Improvement-vs-budget under cost-aware vs cost-blind selection.

    * cost-aware: clusters ranked by alleviation per unit cost;
    * cost-blind: the paper's coverage ranking (alleviation only).
    """
    cost_model = cost_model or CostModel()
    economics = _cluster_economics(ma, cost_model)
    total_cost = sum(cost for _, _, cost in economics)
    if budgets is None:
        top = max(total_cost, 1.0)
        budgets = np.unique(np.concatenate([
            np.linspace(0.0, top, 9), [top]
        ]))
    budgets = np.asarray(budgets, dtype=np.float64)
    total = ma.total_problem_sessions

    aware = _select_under_budgets(
        economics,
        order_key=lambda item: -(item[1] / max(item[2], 1e-12)),
        budgets=budgets,
        total_problems=total,
        greedy_fill=True,
    )
    blind = _select_under_budgets(
        economics,
        order_key=lambda item: -item[1],
        budgets=budgets,
        total_problems=total,
        greedy_fill=False,
    )
    return CostBenefitResult(
        metric=ma.metric.name, budgets=budgets, cost_aware=aware,
        cost_blind=blind,
    )
