"""Analysis layer: figure/table computations and what-if simulations.

Maps one-to-one onto the paper's evaluation artifacts; see the
per-experiment index in DESIGN.md.
"""

from repro.analysis.cdfs import (
    ECDF,
    default_grid,
    headline_statistics,
    metric_ecdf,
    quality_cdfs,
)
from repro.analysis.timeseries import (
    ClusterCountSeries,
    ProblemRatioSeries,
    cluster_count_timeseries,
    cross_metric_correlation,
    problem_ratio_timeseries,
    problem_session_counts,
    unattributed_problem_counts,
)
from repro.analysis.breakdown import (
    BreakdownSector,
    critical_type_breakdown,
    single_attribute_share,
)
from repro.analysis.whatif import (
    ImprovementCurve,
    ProactiveResult,
    ReactiveResult,
    attribute_restricted_curves,
    cluster_alleviation,
    oracle_improvement,
    proactive_simulation,
    rank_critical_clusters,
    reactive_simulation,
    topk_improvement_curve,
)
from repro.analysis.tables import (
    CoverageRow,
    PrevalentCluster,
    PrevalentClusterTable,
    coverage_table,
    jaccard_table,
    prevalent_critical_clusters,
    reduction_summary,
)
from repro.analysis.validation import (
    EventRecovery,
    ValidationReport,
    validate_all,
    validate_metric,
)
from repro.analysis.drilldown import (
    AttributeSlice,
    DrilldownReport,
    drill_down,
)
from repro.analysis.associations import (
    AttributeAssociation,
    attribute_associations,
    cramers_v,
    explain_split_attribution,
    value_concentration,
)
from repro.analysis.engagement import (
    EngagementImpact,
    EngagementModel,
    cluster_engagement_impact,
    engagement_weighted_ranking,
)
from repro.analysis.report import build_report, write_report
from repro.analysis.costbenefit import (
    BudgetPoint,
    CostBenefitResult,
    CostModel,
    cost_benefit_analysis,
)
from repro.analysis.render import render_kv, render_series, render_table

__all__ = [
    "ECDF",
    "default_grid",
    "headline_statistics",
    "metric_ecdf",
    "quality_cdfs",
    "ClusterCountSeries",
    "ProblemRatioSeries",
    "cluster_count_timeseries",
    "cross_metric_correlation",
    "problem_ratio_timeseries",
    "problem_session_counts",
    "unattributed_problem_counts",
    "BreakdownSector",
    "critical_type_breakdown",
    "single_attribute_share",
    "ImprovementCurve",
    "ProactiveResult",
    "ReactiveResult",
    "attribute_restricted_curves",
    "cluster_alleviation",
    "oracle_improvement",
    "proactive_simulation",
    "rank_critical_clusters",
    "reactive_simulation",
    "topk_improvement_curve",
    "CoverageRow",
    "PrevalentCluster",
    "PrevalentClusterTable",
    "coverage_table",
    "jaccard_table",
    "prevalent_critical_clusters",
    "reduction_summary",
    "EventRecovery",
    "ValidationReport",
    "validate_all",
    "validate_metric",
    "render_kv",
    "render_series",
    "render_table",
    "AttributeSlice",
    "DrilldownReport",
    "drill_down",
    "BudgetPoint",
    "CostBenefitResult",
    "CostModel",
    "cost_benefit_analysis",
    "EngagementImpact",
    "EngagementModel",
    "cluster_engagement_impact",
    "engagement_weighted_ranking",
    "build_report",
    "write_report",
    "AttributeAssociation",
    "attribute_associations",
    "cramers_v",
    "explain_split_attribution",
    "value_concentration",
]
