"""Journal-backed perf-regression gate over the pipeline bench.

``benchmarks/bench_pipeline_core.py`` computes a dozen speed and memory
claims (sweep amortization, streaming append, shard map/merge, batch
simulation, cached re-analysis, instrumentation and profiler overhead)
and historically asserted each inline. This module makes those gates a
*data* problem: the bench payload is flattened into one
:class:`~repro.obs.journal.RunJournal` record (command
``bench.pipeline``), and :func:`evaluate_record` re-derives every
verdict **from the journal record alone** — the same thresholds, the
same enforcement conditions (acceptance workload, CPU count), no access
to the live bench objects. The bench asserts the journal verdicts agree
with its own inline gates, so the two can never drift; CI and humans
run the gate standalone over committed results::

    python -m repro.obs.gate benchmarks/results/BENCH_pipeline.json \
        --journal .repro-journal --report-only

Each gauge lands in the record as ``bench.<section>.<metric>``;
enforcement flags (did this workload/CPU-count arm the gate?) ride
along as ``bench.gate.<name>.enforced`` so evaluation needs no
out-of-band context.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs.journal import JOURNAL_VERSION, RunJournal

#: Record command under which bench runs are journaled.
BENCH_COMMAND = "bench.pipeline"

MIN = "min"
MAX = "max"


@dataclass(frozen=True)
class GateSpec:
    """One threshold over one flattened bench gauge."""

    name: str
    metric: str  # gauge name in the journal record
    op: str  # MIN: value must be >= threshold; MAX: <= threshold
    threshold: float

    def check(self, value: float) -> bool:
        return value >= self.threshold if self.op == MIN else value <= self.threshold


#: The pipeline bench's gates, as data. Enforcement (week workload,
#: >= 4 CPUs for the shard wall gate, day workload for mechanistic) is
#: recorded per-run by :func:`flatten_payload`.
PIPELINE_GATES: tuple[GateSpec, ...] = (
    GateSpec("sweep_speedup_min_2", "bench.sweep.sweep_speedup", MIN, 2.0),
    GateSpec(
        "observability_overhead_max_2pct",
        "bench.observability.overhead_pct", MAX, 2.0,
    ),
    GateSpec(
        "streaming_append_detect_min_2",
        "bench.streaming.append_detect_speedup", MIN, 2.0,
    ),
    GateSpec(
        "snapshot_load_min_5",
        "bench.streaming.snapshot_load_speedup", MIN, 5.0,
    ),
    GateSpec(
        "shard_parent_peak_rss_max_0.5",
        "bench.sharding.parent_peak_rss_ratio", MAX, 0.5,
    ),
    GateSpec(
        "shard_analyze_speedup_min_1.3",
        "bench.sharding.analyze_speedup", MIN, 1.3,
    ),
    GateSpec(
        "mechanistic_batch_speedup_min_10",
        "bench.mechanistic.speedup", MIN, 10.0,
    ),
    GateSpec(
        "cache_warm_speedup_min_5",
        "bench.result_cache.warm_speedup", MIN, 5.0,
    ),
    GateSpec(
        "profiler_overhead_max_3pct",
        "bench.profiling.overhead_pct", MAX, 3.0,
    ),
    # Report-only trend line: never enforced (CPU-count dependent, and
    # on one CPU it measures pool overhead, not parallelism).
    GateSpec("parallel_speedup_trend", "bench.speedup", MIN, 0.0),
)


@dataclass(frozen=True)
class GateVerdict:
    """One gate evaluated against one journal record."""

    name: str
    metric: str
    value: float | None
    threshold: float
    op: str
    enforced: bool
    passed: bool  # True when not enforced or threshold met

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "value": self.value,
            "threshold": self.threshold,
            "op": self.op,
            "enforced": self.enforced,
            "passed": self.passed,
        }

    def render(self) -> str:
        mode = "ENFORCED" if self.enforced else "report-only"
        status = "ok" if self.passed else "FAIL"
        value = "missing" if self.value is None else f"{self.value:.4g}"
        op = ">=" if self.op == MIN else "<="
        return (
            f"  [{status:>4s}] {self.name:<36s} {value:>10s} "
            f"{op} {self.threshold:g} ({mode})"
        )


def flatten_payload(payload: dict[str, Any]) -> dict[str, float]:
    """The bench payload's gated numbers as flat journal gauges.

    Enforcement flags come from the payload itself: the top-level
    workload decides the week-only gates, and the sharding/mechanistic/
    cache sections record their own ``gates_enforced`` conditions.
    """
    gauges: dict[str, float] = {}

    def put(key: str, value: Any) -> None:
        if value is not None:
            gauges[key] = float(value)

    week = str(payload.get("workload", "")).startswith("week")
    put("bench.cpus", payload.get("cpus"))
    put("bench.speedup", payload.get("speedup"))
    put("bench.sweep.sweep_speedup", payload.get("sweep", {}).get("sweep_speedup"))
    put(
        "bench.observability.overhead_pct",
        payload.get("observability", {}).get("overhead_pct"),
    )
    streaming = payload.get("streaming", {})
    put("bench.streaming.append_detect_speedup",
        streaming.get("append_detect_speedup"))
    put("bench.streaming.snapshot_load_speedup",
        streaming.get("snapshot_load_speedup"))
    sharding = payload.get("sharding", {})
    put("bench.sharding.parent_peak_rss_ratio",
        sharding.get("parent_peak_rss_ratio"))
    put("bench.sharding.analyze_speedup",
        sharding.get("analyze_speedup_vs_indexed"))
    mechanistic = payload.get("mechanistic", {})
    put("bench.mechanistic.speedup", mechanistic.get("speedup"))
    cache = payload.get("result_cache", {})
    put("bench.result_cache.warm_speedup", cache.get("warm_speedup"))
    profiling = payload.get("profiling", {})
    put("bench.profiling.overhead_pct", profiling.get("overhead_pct"))

    shard_gates = sharding.get("gates_enforced", {})
    mech_gates = mechanistic.get("gates_enforced", {})
    cache_gates = cache.get("gates_enforced", {})
    enforced = {
        "sweep_speedup_min_2": week,
        "observability_overhead_max_2pct": week,
        "streaming_append_detect_min_2": week,
        "snapshot_load_min_5": week,
        "shard_parent_peak_rss_max_0.5": bool(
            shard_gates.get("parent_peak_rss_ratio_max_0.5")
        ),
        "shard_analyze_speedup_min_1.3": bool(
            shard_gates.get("analyze_speedup_min_1.3")
        ),
        "mechanistic_batch_speedup_min_10": bool(
            mech_gates.get("batch_speedup_min_10")
        ),
        "cache_warm_speedup_min_5": bool(
            cache_gates.get("warm_speedup_min_5")
        ),
        "profiler_overhead_max_3pct": bool(
            profiling.get("gates_enforced", {}).get("overhead_max_3pct")
        ),
        "parallel_speedup_trend": False,
    }
    for name, flag in enforced.items():
        gauges[f"bench.gate.{name}.enforced"] = 1.0 if flag else 0.0
    return gauges


def ingest_payload(
    journal: RunJournal, payload: dict[str, Any]
) -> dict[str, Any]:
    """Journal one bench payload as a ``bench.pipeline`` record."""
    record = {
        "journal_version": JOURNAL_VERSION,
        "command": BENCH_COMMAND,
        "config_digest": "bench.pipeline",
        "args": {"workload": payload.get("workload")},
        "started_unix": payload.get("generated_at_unix"),
        "duration_s": 0.0,
        "exit_code": 0,
        "degradations": [],
        "metrics": {
            "counters": {},
            "gauges": flatten_payload(payload),
            "histograms": {},
        },
        "phases": {},
        "critical_path": [],
    }
    return journal.append(record)


def evaluate_record(record: dict[str, Any]) -> list[GateVerdict]:
    """Every pipeline gate evaluated against one journal record.

    A gate whose gauge is missing from the record fails when enforced
    (a gate that silently can't see its number is not a gate) and
    passes as report-only otherwise.
    """
    gauges = (record.get("metrics") or {}).get("gauges") or {}
    verdicts = []
    for spec in PIPELINE_GATES:
        enforced = bool(gauges.get(f"bench.gate.{spec.name}.enforced", 0.0))
        value = gauges.get(spec.metric)
        if value is None:
            passed = not enforced
        else:
            passed = spec.check(float(value)) or not enforced
        verdicts.append(
            GateVerdict(
                name=spec.name,
                metric=spec.metric,
                value=None if value is None else float(value),
                threshold=spec.threshold,
                op=spec.op,
                enforced=enforced,
                passed=passed,
            )
        )
    return verdicts


def evaluate_latest(journal: RunJournal) -> list[GateVerdict]:
    """Gate verdicts for the journal's most recent bench record."""
    record = journal.latest(command=BENCH_COMMAND)
    if record is None:
        raise ValueError(
            f"journal {journal.file} has no '{BENCH_COMMAND}' records"
        )
    return evaluate_record(record)


def main(argv=None) -> int:
    """``python -m repro.obs.gate RESULTS.json [--journal DIR]``.

    Ingests the bench payload into the journal (unless ``--no-ingest``),
    evaluates the gates from the journal record, prints the verdicts,
    and exits 1 on an enforced failure unless ``--report-only``.
    """
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.gate",
        description="journal-backed bench perf-regression gate",
    )
    parser.add_argument("results", nargs="?", default=None,
                        help="BENCH_pipeline.json to ingest before gating")
    parser.add_argument("--journal", default=RunJournal.DEFAULT_DIR,
                        metavar="DIR", help="journal directory")
    parser.add_argument("--no-ingest", action="store_true",
                        help="evaluate the journal's latest bench record "
                        "without journaling RESULTS first")
    parser.add_argument("--report-only", action="store_true",
                        help="print verdicts but always exit 0")
    args = parser.parse_args(argv)

    journal = RunJournal(args.journal)
    try:
        if args.results is not None and not args.no_ingest:
            payload = json.loads(Path(args.results).read_text("utf-8"))
            record = ingest_payload(journal, payload)
            print(f"journaled {args.results} as {record['run_id']}")
        verdicts = evaluate_latest(journal)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"pipeline gates ({journal.file}):")
    for verdict in verdicts:
        print(verdict.render())
    failed = [v for v in verdicts if v.enforced and not v.passed]
    ok = not failed
    print(
        f"{len(verdicts)} gates, "
        f"{sum(1 for v in verdicts if v.enforced)} enforced, "
        f"{len(failed)} failed"
        + (" (report-only mode)" if args.report_only else "")
    )
    if args.report_only:
        return 0
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
