"""Observability subsystem: tracing spans, metrics, sinks, degradations.

``repro.obs`` is the pipeline's first-class instrumentation layer
(DESIGN.md §6). It generalizes the flat
:class:`~repro.core.pipeline.PipelineTimings` counters into:

* a **span tree** (:class:`Tracer` / :class:`Span`) covering ingestion,
  index builds, shared-memory pack/attach/release, snapshot load/save,
  worker fan-out (per-worker timing and queue wait) and aggregation;
* a **metrics registry** (:class:`MetricsRegistry`) of counters, gauges
  and histogram summaries (segment bytes, attach counts, degraded
  paths, leaked-segment detections);
* **sinks**: ``--trace-out`` JSON (:func:`write_trace_json`), the run
  manifest written next to results (:func:`write_run_manifest`), and
  the human span tree (``Tracer.render``, the upgraded ``--timings``).

Both the tracer and the registry default to shared no-op singletons, so
instrumented hot paths cost one global read + one empty call until
:func:`use_tracer` / :func:`use_metrics` install real collectors (the
CLI does both when ``--trace-out`` is given; tests do it to assert on
spans and counters).

Degraded-but-successful paths — shm transport falling back to pickle,
a crashed worker pool completing serially, a corrupt snapshot being
rebuilt — are reported through :func:`record_degradation`, which logs a
warning (always), increments ``degraded.<kind>`` (when a registry is
installed) and records a ``degraded`` trace event (when a tracer is
installed). Failure *handling* lives at the call sites; this module
only guarantees the reason is observable.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from typing import Iterator, Union

from repro.obs.analyze import (
    critical_path,
    render_critical_path,
    render_tree,
    span_stats,
    top_spans,
)
from repro.obs.diff import DiffThresholds, diff_records
from repro.obs.journal import JOURNAL_VERSION, RunJournal
from repro.obs.metrics import (
    HistogramSummary,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    render_histograms,
)
from repro.obs.profile import SamplingProfiler, profiler_available
from repro.obs.prom import render_prometheus
from repro.obs.sinks import (
    MANIFEST_VERSION,
    build_run_manifest,
    degradation_reasons,
    manifest_path_for,
    peak_rss_bytes,
    write_run_manifest,
    write_trace_json,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "DiffThresholds",
    "HistogramSummary",
    "JOURNAL_VERSION",
    "MANIFEST_VERSION",
    "MetricsRegistry",
    "NullMetrics",
    "NullTracer",
    "RunJournal",
    "SamplingProfiler",
    "Span",
    "Tracer",
    "build_run_manifest",
    "critical_path",
    "current_metrics",
    "current_tracer",
    "degradation_reasons",
    "diff_records",
    "manifest_path_for",
    "peak_rss_bytes",
    "profiler_available",
    "record_degradation",
    "render_critical_path",
    "render_histograms",
    "render_prometheus",
    "render_tree",
    "span_stats",
    "top_spans",
    "use_metrics",
    "use_tracer",
    "write_run_manifest",
    "write_trace_json",
]

log = logging.getLogger("repro.obs")

# Process-wide active collectors. Plain module globals rather than
# contextvars: the pipeline parallelizes across processes, not threads,
# and forked workers exiting via os._exit never flush these anyway.
_TRACER: Union[Tracer, NullTracer] = NULL_TRACER
_METRICS: Union[MetricsRegistry, NullMetrics] = NULL_METRICS


def current_tracer() -> Union[Tracer, NullTracer]:
    """The active tracer (the no-op singleton unless one is installed)."""
    return _TRACER


def current_metrics() -> Union[MetricsRegistry, NullMetrics]:
    """The active metrics registry (no-op singleton by default)."""
    return _METRICS


@contextmanager
def use_tracer(tracer: Union[Tracer, NullTracer]) -> Iterator:
    """Install ``tracer`` as the process-wide tracer for the block."""
    global _TRACER
    previous, _TRACER = _TRACER, tracer
    try:
        yield tracer
    finally:
        _TRACER = previous


@contextmanager
def use_metrics(metrics: Union[MetricsRegistry, NullMetrics]) -> Iterator:
    """Install ``metrics`` as the process-wide registry for the block."""
    global _METRICS
    previous, _METRICS = _METRICS, metrics
    try:
        yield metrics
    finally:
        _METRICS = previous


def record_degradation(kind: str, reason: str) -> None:
    """Report a degraded-but-successful path (see module docstring).

    ``kind`` is a stable dotted-name suffix (``shm_to_pickle``,
    ``parallel_to_serial``, ``snapshot_rebuild``, ``shm_leak``);
    ``reason`` is the human-readable explanation that ends up in logs,
    the trace event and the run manifest.
    """
    log.warning("degraded path [%s]: %s", kind, reason)
    _METRICS.inc(f"degraded.{kind}")
    _TRACER.event("degraded", kind=kind, reason=reason)
