"""Structured tracing spans for the analysis pipeline.

A :class:`Tracer` records a tree of timed :class:`Span`\\ s — the
generalization of the flat :class:`~repro.core.pipeline.PipelineTimings`
phase counters that PR 1 introduced. Spans nest (ingest → index build →
worker fan-out → per-worker batches), carry free-form attributes
(row counts, byte counts, degradation reasons) and serialize to a plain
JSON tree (``--trace-out``).

The default tracer is the :data:`NULL_TRACER` singleton whose ``span``
returns a shared no-op context manager — instrumented code pays one
module-global read and one method call per span, so tracing costs
nothing unless a real tracer is installed with :func:`use_tracer` (the
CLI does this when ``--trace-out`` is given).

Two recording styles coexist:

* live spans — ``with tracer.span("index_build") as s: ...; s.set(...)``
  measures the enclosed block;
* post-hoc records — ``tracer.record("aggregate", duration_s=...)``
  attaches an already-measured child (used for phase totals accumulated
  inside worker processes, where the parent's tracer is not running).

The tracer is deliberately not thread-safe: the pipeline parallelizes
across *processes*, and worker-side span data travels back to the
parent with the results (see ``_worker_run_batch``).
"""

from __future__ import annotations

import time
from typing import Any, Iterator


class Span:
    """One named, timed node of the trace tree."""

    __slots__ = ("name", "start_s", "duration_s", "attrs", "children")

    def __init__(self, name: str, start_s: float = 0.0) -> None:
        self.name = name
        self.start_s = start_s
        self.duration_s = 0.0
        self.attrs: dict[str, Any] = {}
        self.children: list[Span] = []

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (counters, byte sizes, labels) to the span."""
        self.attrs.update(attrs)
        return self

    def as_dict(self) -> dict:
        out: dict[str, Any] = {
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
        }
        if self.attrs:
            out["attrs"] = self.attrs
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class _LiveSpan:
    """Context manager pairing a :class:`Span` with its tracer stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.duration_s = self._tracer._now() - span.start_s
        if exc_type is not None:
            span.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        popped = self._tracer._stack.pop()
        assert popped is span, "span stack corrupted"
        return False


class Tracer:
    """Collects a span tree for one run (install with :func:`use_tracer`)."""

    enabled = True

    def __init__(self, name: str = "run") -> None:
        self._t0 = time.perf_counter()
        self.started_unix = time.time()
        self.root = Span(name, 0.0)
        self.root.attrs["started_unix"] = self.started_unix
        self._stack: list[Span] = [self.root]

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    @property
    def current(self) -> Span:
        return self._stack[-1]

    def span(self, name: str, **attrs: Any) -> _LiveSpan:
        """Open a child span of the current span (use as ``with`` target)."""
        span = Span(name, self._now())
        if attrs:
            span.attrs.update(attrs)
        self.current.children.append(span)
        return _LiveSpan(self, span)

    def event(self, name: str, **attrs: Any) -> Span:
        """A zero-duration child span marking a point in time."""
        span = Span(name, self._now())
        span.attrs.update(attrs)
        self.current.children.append(span)
        return span

    def record(self, name: str, duration_s: float = 0.0, **attrs: Any) -> Span:
        """Attach an externally-measured child span (e.g. worker-side time)."""
        span = Span(name, self._now())
        span.duration_s = float(duration_s)
        span.attrs.update(attrs)
        self.current.children.append(span)
        return span

    def finish(self) -> Span:
        """Close the root span (idempotent); returns it."""
        self.root.duration_s = self._now()
        return self.root

    def find(self, name: str) -> list[Span]:
        """All spans with ``name``, depth-first."""
        return [s for s in self.root.walk() if s.name == name]

    def as_dict(self) -> dict:
        if self.root.duration_s == 0.0:
            self.finish()
        return self.root.as_dict()

    def render(self, max_depth: int = 6) -> str:
        """Human-readable indented span tree (the upgraded ``--timings``)."""
        if self.root.duration_s == 0.0:
            self.finish()
        lines: list[str] = []

        def visit(span: Span, depth: int) -> None:
            if depth > max_depth:
                return
            attrs = {
                k: v for k, v in span.attrs.items() if k != "started_unix"
            }
            detail = ""
            if attrs:
                parts = ", ".join(f"{k}={_compact(v)}" for k, v in attrs.items())
                detail = f"  [{parts}]"
            lines.append(
                f"{'  ' * depth}{span.name:<24s} {span.duration_s:9.4f} s{detail}"
            )
            for child in span.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)


def _compact(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class _NullSpan:
    """Shared do-nothing span: context manager and attribute sink."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Default tracer: every operation is a no-op."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, duration_s: float = 0.0, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def find(self, name: str) -> list:
        return []


NULL_TRACER = NullTracer()
