"""Observability sinks: trace JSON, run manifests, human summaries.

Three machine/human read-outs of one instrumented run:

* :func:`write_trace_json` — the full span tree plus the metrics
  snapshot, as one JSON document (the CLI's ``--trace-out``);
* :func:`write_run_manifest` — a compact, machine-readable record of
  *what ran and how it went* (command, arguments, environment, top-level
  timings, degradations), written next to a run's results so a fleet of
  runs stays auditable without parsing logs;
* ``Tracer.render()`` (in :mod:`repro.obs.trace`) — the indented tree
  the upgraded ``--timings`` prints.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.trace import Tracer

#: Bumped when the manifest layout changes incompatibly.
MANIFEST_VERSION = 1


def _write_atomic(path: Path, text: str) -> Path:
    """Write ``text`` to ``path`` via tmp + :func:`os.replace`.

    The same discipline the result cache uses for its entries: a crashed
    or interrupted run can never leave a truncated trace or manifest
    behind to poison later journal ingestion — readers see either the
    old complete file or the new complete file. The tmp is unlinked on
    any failure.
    """
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def peak_rss_bytes() -> int | None:
    """Process-lifetime peak resident set size, in bytes.

    Backed by ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` — a
    high-water mark, so it only ever grows within a process. Forked
    worker processes report their own peaks, which is what makes the
    shard engine's bounded-parent-memory claim observable: the parent's
    figure stays O(largest shard) while workers account for their own
    mapping. Returns ``None`` where rusage is unavailable (non-POSIX).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:  # pragma: no cover - defensive on exotic kernels
        return None
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        return int(peak)
    return int(peak) * 1024  # kilobytes on Linux


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of argparse values etc. to JSON types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def write_trace_json(
    path: str | Path, tracer: Tracer, metrics: MetricsRegistry | None = None
) -> Path:
    """Write the span tree (+ metrics snapshot) as one JSON document."""
    path = Path(path)
    payload: dict[str, Any] = {"trace": tracer.as_dict()}
    if metrics is not None and not isinstance(metrics, NullMetrics):
        payload["metrics"] = metrics.as_dict()
    return _write_atomic(
        path, json.dumps(payload, indent=2, default=_jsonable) + "\n"
    )


def degradation_reasons(tracer: Tracer) -> list[dict]:
    """Every degraded-path event recorded in the trace, in span order."""
    return [
        {
            "kind": span.attrs.get("kind", "unknown"),
            "reason": span.attrs.get("reason", ""),
        }
        for span in tracer.find("degraded")
    ]


def build_run_manifest(
    command: str,
    argv: list[str] | None,
    tracer: Tracer,
    metrics: MetricsRegistry | None = None,
    args: dict[str, Any] | None = None,
    outputs: list[str] | None = None,
    exit_code: int | None = None,
) -> dict[str, Any]:
    """The run-manifest record as a dict (what :func:`write_run_manifest`
    serializes, and what :class:`~repro.obs.journal.RunJournal` ingests
    when no manifest file was requested)."""
    root = tracer.finish()
    manifest: dict[str, Any] = {
        "manifest_version": MANIFEST_VERSION,
        "command": command,
        "argv": list(argv) if argv is not None else list(sys.argv[1:]),
        "args": _jsonable(args or {}),
        "started_unix": tracer.started_unix,
        "finished_unix": tracer.started_unix + root.duration_s,
        "duration_s": round(root.duration_s, 6),
        "exit_code": exit_code,
        "outputs": list(outputs or []),
        "host": platform.node(),
        "pid": os.getpid(),
        "peak_rss_bytes": peak_rss_bytes(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "degradations": degradation_reasons(tracer),
        "span_names": sorted({s.name for s in root.walk()}),
    }
    try:  # numpy is a hard dependency, but keep the manifest resilient
        import numpy

        manifest["numpy"] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is always importable here
        pass
    if metrics is not None and not isinstance(metrics, NullMetrics):
        manifest["metrics"] = metrics.as_dict()
    return manifest


def write_run_manifest(
    path: str | Path,
    command: str,
    argv: list[str] | None,
    tracer: Tracer,
    metrics: MetricsRegistry | None = None,
    args: dict[str, Any] | None = None,
    outputs: list[str] | None = None,
    exit_code: int | None = None,
    manifest: dict[str, Any] | None = None,
) -> Path:
    """Write the machine-readable run manifest next to a run's results.

    Pass a prebuilt ``manifest`` (from :func:`build_run_manifest`) to
    write exactly that record; otherwise one is built from the other
    arguments. The write is atomic (tmp + ``os.replace``)."""
    path = Path(path)
    if manifest is None:
        manifest = build_run_manifest(
            command, argv, tracer, metrics=metrics, args=args,
            outputs=outputs, exit_code=exit_code,
        )
    return _write_atomic(
        path, json.dumps(manifest, indent=2, default=_jsonable) + "\n"
    )


def manifest_path_for(trace_out: str | Path) -> Path:
    """Where the run manifest lives for a given ``--trace-out`` path."""
    trace_out = Path(trace_out)
    return trace_out.with_name(trace_out.stem + ".manifest.json")


def utcnow_unix() -> float:
    """Seconds since the epoch (isolated for testability)."""
    return time.time()
