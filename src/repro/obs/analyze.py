"""Span-tree analytics: aggregation, critical path, hotspot ranking.

Every consumer of a recorded trace — ``obs view``, ``obs diff``, the
run journal, the regression gate — needs the same three reductions of
the span tree, so they live here once:

* :func:`span_stats` — per-name aggregation (count, total time, self
  time, max single span). Self time is a span's duration minus its
  children's, clamped at zero: under a worker fan-out the children run
  in parallel and their summed durations legitimately exceed the
  parent's wall time.
* :func:`critical_path` — the root-to-leaf chain obtained by always
  descending into the longest child. Through a parallel fan-out this
  picks the slowest worker, which is exactly the chain that bounds the
  run's wall clock.
* :func:`top_spans` — hotspot ranking by aggregate self time; where the
  run actually spent its time, not which phase contains it.

All functions operate on the plain-dict JSON form of a span tree (what
``--trace-out`` writes); live :class:`~repro.obs.trace.Span` objects
are accepted and normalized via ``as_dict``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.obs.trace import Span


def normalize_tree(tree: Any) -> dict:
    """A span tree as a plain dict (accepts ``Span`` or dict)."""
    if isinstance(tree, Span):
        return tree.as_dict()
    if isinstance(tree, dict) and "name" in tree:
        return tree
    raise ValueError(
        "expected a span dict (with 'name') or a Span, "
        f"got {type(tree).__name__}"
    )


def load_trace_json(path: str | Path) -> dict:
    """Load a ``--trace-out`` JSON document ``{"trace": ..., "metrics": ...}``.

    Raises ``ValueError`` on malformed documents so CLI consumers exit 2
    with a one-line message instead of a traceback.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON ({exc})") from None
    if not isinstance(payload, dict) or "trace" not in payload:
        raise ValueError(f"{path} is not a trace JSON (no 'trace' key)")
    normalize_tree(payload["trace"])  # validates shape
    return payload


def walk_tree(tree: dict, depth: int = 0) -> Iterator[tuple[dict, int]]:
    """Depth-first ``(span_dict, depth)`` pairs over the tree."""
    yield tree, depth
    for child in tree.get("children", ()):
        yield from walk_tree(child, depth + 1)


@dataclass
class SpanStats:
    """Aggregate of every span sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    max_s: float = 0.0
    attrs: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": round(self.total_s, 6),
            "self_s": round(self.self_s, 6),
            "max_s": round(self.max_s, 6),
        }


def span_stats(tree: Any) -> dict[str, SpanStats]:
    """Per-name aggregation over the whole tree.

    ``self_s`` is duration minus the children's summed durations,
    clamped at zero (parallel children can exceed the parent's wall
    time). The returned dict preserves first-visit (depth-first) order,
    which reads naturally as "pipeline order".
    """
    tree = normalize_tree(tree)
    stats: dict[str, SpanStats] = {}
    for span, _ in walk_tree(tree):
        name = span["name"]
        entry = stats.get(name)
        if entry is None:
            entry = stats[name] = SpanStats(name)
        duration = float(span.get("duration_s", 0.0))
        child_s = sum(
            float(c.get("duration_s", 0.0)) for c in span.get("children", ())
        )
        entry.count += 1
        entry.total_s += duration
        entry.self_s += max(0.0, duration - child_s)
        entry.max_s = max(entry.max_s, duration)
    return stats


def critical_path(tree: Any) -> list[dict]:
    """Root-to-leaf chain following the longest child at every level.

    Under the worker fan-out the children of ``fanout`` ran in
    parallel, so the longest child *is* the wall-clock-critical one;
    elsewhere children are sequential and the longest child is simply
    the dominant phase. Each entry carries the span's duration and its
    exclusive share of the path (duration minus the chosen child's).
    """
    node = normalize_tree(tree)
    path: list[dict] = []
    while True:
        duration = float(node.get("duration_s", 0.0))
        children = node.get("children", ())
        chosen = None
        if children:
            chosen = max(
                children, key=lambda c: float(c.get("duration_s", 0.0))
            )
        chosen_s = float(chosen.get("duration_s", 0.0)) if chosen else 0.0
        path.append(
            {
                "name": node["name"],
                "duration_s": round(duration, 6),
                "self_s": round(max(0.0, duration - chosen_s), 6),
                "attrs": dict(node.get("attrs", {})),
            }
        )
        if chosen is None:
            return path
        node = chosen


def top_spans(tree: Any, n: int = 10) -> list[SpanStats]:
    """The ``n`` span names with the largest aggregate self time."""
    ranked = sorted(
        span_stats(tree).values(), key=lambda s: s.self_s, reverse=True
    )
    return ranked[: max(0, n)]


def render_tree(tree: Any, max_depth: int = 6) -> str:
    """Indented span tree from the JSON form (mirrors ``Tracer.render``,
    which needs a live tracer)."""
    tree = normalize_tree(tree)
    lines: list[str] = []
    for span, depth in walk_tree(tree):
        if depth > max_depth:
            continue
        attrs = {
            k: v
            for k, v in span.get("attrs", {}).items()
            if k != "started_unix"
        }
        detail = ""
        if attrs:
            parts = ", ".join(f"{k}={_compact(v)}" for k, v in attrs.items())
            detail = f"  [{parts}]"
        lines.append(
            f"{'  ' * depth}{span['name']:<24s} "
            f"{float(span.get('duration_s', 0.0)):9.4f} s{detail}"
        )
    return "\n".join(lines)


def render_critical_path(path: list[dict]) -> str:
    """One line per hop: name, duration, exclusive contribution."""
    total = path[0]["duration_s"] if path else 0.0
    lines = []
    for i, hop in enumerate(path):
        share = 100.0 * hop["duration_s"] / total if total > 0 else 0.0
        lines.append(
            f"{'  ' * i}{hop['name']:<24s} {hop['duration_s']:9.4f} s "
            f"({share:5.1f}% of run, self {hop['self_s']:.4f} s)"
        )
    return "\n".join(lines)


def _compact(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
