"""Append-only run journal: the pipeline's own measurement history.

The paper's central observation — quality problems are *structured over
time*, persistent and recurrent per cluster — applies to the
reproduction pipeline itself: a performance regression is a problem
cluster in the history of runs, and it can only be detected against a
kept baseline (the same discipline Ghasemi et al. and YouLighter apply
to production QoE telemetry). :class:`RunJournal` is that baseline
store.

Every instrumented run (``--journal`` on the CLI, or
:meth:`RunJournal.ingest` programmatically) appends one normalized JSON
line to ``<dir>/journal.jsonl`` combining the run manifest, a per-name
span aggregation, the wall-clock critical path, the metrics snapshot, a
config digest (for "last K *matching* runs" baselines) and the current
git SHA. Records are self-describing (``journal_version``) and the
reader is tolerant: corrupt lines are skipped with a warning, records
from a different journal version are rejected with a warning — one bad
byte never poisons the history.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import subprocess
from pathlib import Path
from typing import Any, Iterator

from repro.obs.analyze import critical_path, span_stats
from repro.obs.sinks import utcnow_unix

log = logging.getLogger("repro.obs.journal")

#: Bumped when the record layout changes incompatibly; records carrying
#: a different version are rejected (skipped with a warning) on read.
JOURNAL_VERSION = 1

#: Manifest args that never affect what a run computes or how fast —
#: they are excluded from the config digest so output paths and
#: observability knobs don't fragment the baseline.
_DIGEST_EXCLUDED_ARGS = frozenset(
    {"output", "trace_out", "journal", "timings", "profile"}
)


def config_digest(command: str, args: dict[str, Any] | None) -> str:
    """Digest identifying "the same run configuration".

    Covers the command and every argument except pure output paths and
    observability flags (:data:`_DIGEST_EXCLUDED_ARGS`): two runs with
    equal digests computed the same thing over the same inputs with the
    same engine knobs, so their timings are directly comparable.
    """
    payload = {
        "command": command,
        "args": {
            k: v
            for k, v in sorted((args or {}).items())
            if k not in _DIGEST_EXCLUDED_ARGS
        },
    }
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def git_sha(cwd: str | Path | None = None) -> str | None:
    """Current git commit SHA, or ``None`` outside a repo / without git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            cwd=str(cwd) if cwd is not None else None,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha if sha else None


class RunJournal:
    """Append-only JSONL history of instrumented runs."""

    #: Default location, relative to the working directory.
    DEFAULT_DIR = ".repro-journal"

    def __init__(self, path: str | Path = DEFAULT_DIR) -> None:
        self.dir = Path(path)
        self.file = self.dir / "journal.jsonl"

    # -- writing -----------------------------------------------------------
    def ingest(
        self,
        manifest: dict[str, Any],
        trace: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Normalize one run (manifest + optional span tree) into a
        record and append it. Returns the record (with its ``run_id``).

        ``trace`` is the span tree in JSON form (``tracer.as_dict()`` or
        the ``"trace"`` key of a ``--trace-out`` document); when given,
        the record carries the per-name phase aggregation and the
        critical path, which is what ``obs diff`` compares.
        """
        if not isinstance(manifest, dict) or "command" not in manifest:
            raise ValueError("manifest must be a dict with a 'command' key")
        command = manifest["command"]
        args = manifest.get("args") or {}
        record: dict[str, Any] = {
            "journal_version": JOURNAL_VERSION,
            "run_id": "",  # filled by append()
            "recorded_unix": utcnow_unix(),
            "command": command,
            "config_digest": config_digest(command, args),
            "git_sha": git_sha(),
            "argv": manifest.get("argv", []),
            "args": args,
            "started_unix": manifest.get("started_unix"),
            "duration_s": manifest.get("duration_s", 0.0),
            "exit_code": manifest.get("exit_code"),
            "host": manifest.get("host"),
            "python": manifest.get("python"),
            "peak_rss_bytes": manifest.get("peak_rss_bytes"),
            "degradations": manifest.get("degradations", []),
            "metrics": manifest.get("metrics")
            or {"counters": {}, "gauges": {}, "histograms": {}},
            "phases": {},
            "critical_path": [],
        }
        if trace is not None:
            record["phases"] = {
                name: stats.as_dict()
                for name, stats in span_stats(trace).items()
            }
            record["critical_path"] = [
                {k: hop[k] for k in ("name", "duration_s", "self_s")}
                for hop in critical_path(trace)
            ]
        return self.append(record)

    def append(self, record: dict[str, Any]) -> dict[str, Any]:
        """Append one record, stamping ``run_id`` and ``journal_version``."""
        record.setdefault("journal_version", JOURNAL_VERSION)
        record.setdefault("recorded_unix", utcnow_unix())
        if not record.get("run_id"):
            record["run_id"] = self._next_run_id(record)
        self.dir.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str)
        if "\n" in line:  # defensive: one record is one line, always
            raise ValueError("journal records must serialize to one line")
        with open(self.file, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return record

    def _next_run_id(self, record: dict[str, Any]) -> str:
        """``r<seq>-<digest6>``: human-orderable, collision-safe."""
        seq = self._line_count() + 1
        blob = json.dumps(
            [record.get("command"), record.get("started_unix"),
             record.get("recorded_unix"), os.getpid(), seq],
            default=str,
        )
        suffix = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:6]
        return f"r{seq:05d}-{suffix}"

    def _line_count(self) -> int:
        try:
            with open(self.file, "rb") as fh:
                return sum(1 for _ in fh)
        except OSError:
            return 0

    # -- reading -----------------------------------------------------------
    def _iter_records(self) -> Iterator[dict[str, Any]]:
        """Valid records in append order; corrupt lines and version
        mismatches are skipped with a warning, never raised."""
        try:
            with open(self.file, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                log.warning(
                    "journal %s line %d: corrupt record skipped",
                    self.file, lineno,
                )
                continue
            if not isinstance(record, dict):
                log.warning(
                    "journal %s line %d: corrupt record skipped",
                    self.file, lineno,
                )
                continue
            version = record.get("journal_version")
            if version != JOURNAL_VERSION:
                log.warning(
                    "journal %s line %d: version %r rejected "
                    "(this reader speaks version %d)",
                    self.file, lineno, version, JOURNAL_VERSION,
                )
                continue
            yield record

    def records(
        self,
        command: str | None = None,
        config_digest: str | None = None,
        last: int | None = None,
    ) -> list[dict[str, Any]]:
        """Matching records in append order (optionally only the last N)."""
        out = [
            r
            for r in self._iter_records()
            if (command is None or r.get("command") == command)
            and (
                config_digest is None
                or r.get("config_digest") == config_digest
            )
        ]
        if last is not None:
            out = out[-max(0, last):] if last else []
        return out

    def get(self, run_id: str) -> dict[str, Any] | None:
        """The record with ``run_id`` (or a unique prefix of one)."""
        exact = [r for r in self._iter_records() if r.get("run_id") == run_id]
        if exact:
            return exact[-1]
        prefixed = [
            r
            for r in self._iter_records()
            if str(r.get("run_id", "")).startswith(run_id)
        ]
        if len(prefixed) == 1:
            return prefixed[0]
        return None

    def latest(self, command: str | None = None) -> dict[str, Any] | None:
        """The most recent (optionally command-matching) record."""
        matching = self.records(command=command)
        return matching[-1] if matching else None

    def baseline(
        self,
        record: dict[str, Any],
        k: int = 5,
    ) -> dict[str, Any] | None:
        """Synthetic baseline record: the mean of the last ``k`` runs
        matching ``record``'s command + config digest (excluding the
        record itself). ``None`` when no matching history exists.

        Phase totals, duration and peak RSS are averaged element-wise;
        that is the "learned normal" a new run is diffed against.
        """
        matching = [
            r
            for r in self.records(
                command=record.get("command"),
                config_digest=record.get("config_digest"),
            )
            if r.get("run_id") != record.get("run_id")
        ][-max(1, k):]
        if not matching:
            return None
        phases: dict[str, dict[str, float]] = {}
        counts: dict[str, int] = {}
        for r in matching:
            for name, stats in (r.get("phases") or {}).items():
                agg = phases.setdefault(
                    name, {"count": 0.0, "total_s": 0.0, "self_s": 0.0,
                           "max_s": 0.0}
                )
                for key in agg:
                    agg[key] += float(stats.get(key, 0.0))
                counts[name] = counts.get(name, 0) + 1
        for name, agg in phases.items():
            for key in agg:
                agg[key] /= counts[name]
        durations = [float(r.get("duration_s") or 0.0) for r in matching]
        rss = [
            r["peak_rss_bytes"]
            for r in matching
            if r.get("peak_rss_bytes") is not None
        ]
        return {
            "journal_version": JOURNAL_VERSION,
            "run_id": f"baseline[{len(matching)}]",
            "command": record.get("command"),
            "config_digest": record.get("config_digest"),
            "duration_s": sum(durations) / len(durations),
            "peak_rss_bytes": (sum(rss) / len(rss)) if rss else None,
            "phases": phases,
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            "baseline_of": [r.get("run_id") for r in matching],
        }
