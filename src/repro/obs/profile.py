"""Statistical sampling profiler attributed to the active span stack.

A dependency-free profiler for answering "*where inside a phase* did
the CPU go" without per-operation instrumentation cost: a POSIX
interval timer (``setitimer(ITIMER_PROF)``) delivers ``SIGPROF`` every
``1/hz`` seconds of consumed CPU time, and the handler charges the
sample to the innermost active span of the installed
:class:`~repro.obs.trace.Tracer`. The span stack is already maintained
by the tracing layer, so each sample costs one tuple build and one dict
bump — overhead is ``hz x handler_cost``, a fraction of a percent at
the default 97 Hz (benchmarked and gated in BENCH_pipeline.json's
``profiling`` section).

97 Hz, not 100: a sampling frequency that is coprime with the
pipeline's own periodicities (per-epoch loops, timer-driven work at
round frequencies) avoids systematically hitting the same code points —
the standard prime-frequency trick from production profilers.

Samples export as collapsed-stack lines (``a;b;c 42``), the interchange
format consumed by flamegraph renderers, written next to
``--trace-out`` as ``<stem>.flame.txt``.

Signals are a main-thread, POSIX-only mechanism; :func:`profiler_available`
reports support, and the CLI degrades with a logged reason elsewhere.
Worker processes are unaffected — interval timers are not inherited
across ``fork``, so only the parent is sampled.
"""

from __future__ import annotations

import signal
from pathlib import Path
from typing import Any

from repro.obs.trace import Tracer

#: Default sampling frequency (prime; see module docstring).
DEFAULT_HZ = 97

#: Stack attributed to samples that land outside any live span.
NO_SPAN = "(no-span)"


def profiler_available() -> bool:
    """Whether SIGPROF interval timers exist on this platform."""
    return hasattr(signal, "SIGPROF") and hasattr(signal, "setitimer")


class SamplingProfiler:
    """SIGPROF-driven sampler charging CPU time to the active span path.

    Use as a context manager or via :meth:`start` / :meth:`stop`;
    ``stop`` restores the previous signal disposition and timer. The
    profiler holds its tracer explicitly (not the process-wide current
    one) so a sample can never race an installer swap.
    """

    def __init__(self, tracer: Tracer, hz: float = DEFAULT_HZ) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        if not isinstance(tracer, Tracer):
            raise ValueError(
                "SamplingProfiler needs a live Tracer for span attribution"
            )
        self.tracer = tracer
        self.hz = float(hz)
        self.samples: dict[tuple[str, ...], int] = {}
        self.n_samples = 0
        self._running = False
        self._previous_handler: Any = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if not profiler_available():
            raise RuntimeError(
                "sampling profiler unavailable: no SIGPROF/setitimer "
                "on this platform"
            )
        if self._running:
            raise RuntimeError("profiler already running")
        self._previous_handler = signal.signal(signal.SIGPROF, self._handle)
        interval = 1.0 / self.hz
        signal.setitimer(signal.ITIMER_PROF, interval, interval)
        self._running = True
        return self

    def stop(self) -> "SamplingProfiler":
        if not self._running:
            return self
        signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
        signal.signal(signal.SIGPROF, self._previous_handler)
        self._previous_handler = None
        self._running = False
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- sampling ----------------------------------------------------------
    def _handle(self, signum, frame) -> None:
        """Signal handler: one sample, charged to the span stack.

        Runs between bytecodes on the main thread; it must stay
        allocation-light and can never raise (a raise here would surface
        inside unrelated pipeline code).
        """
        try:
            stack = self.tracer._stack
            path = (
                tuple(span.name for span in stack) if stack else (NO_SPAN,)
            )
            self.samples[path] = self.samples.get(path, 0) + 1
            self.n_samples += 1
        except Exception:  # pragma: no cover - belt and braces
            pass

    # -- export ------------------------------------------------------------
    def collapsed(self) -> list[str]:
        """Collapsed-stack lines (``root;phase;leaf 42``), most-sampled
        first — the flamegraph interchange format."""
        ranked = sorted(
            self.samples.items(), key=lambda item: (-item[1], item[0])
        )
        return [f"{';'.join(path)} {count}" for path, count in ranked]

    def top_stack(self) -> tuple[tuple[str, ...], int] | None:
        """The most-sampled span path (``None`` with no samples)."""
        if not self.samples:
            return None
        return max(self.samples.items(), key=lambda item: (item[1], item[0]))

    def write_collapsed(self, path: str | Path) -> Path:
        """Write the collapsed-stack file (one line per unique path)."""
        path = Path(path)
        path.write_text("\n".join(self.collapsed()) + "\n", encoding="utf-8")
        return path


def flame_path_for(trace_out: str | Path) -> Path:
    """Where the collapsed-stack file lives for a ``--trace-out`` path."""
    trace_out = Path(trace_out)
    return trace_out.with_name(trace_out.stem + ".flame.txt")


def read_collapsed(path: str | Path) -> list[tuple[tuple[str, ...], int]]:
    """Parse a collapsed-stack file back into ``(path, count)`` pairs.

    Tolerant of blank lines; malformed lines raise ``ValueError`` with
    the offending line number (CLI maps that to exit 2).
    """
    out: list[tuple[tuple[str, ...], int]] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack or not count.isdigit():
            raise ValueError(
                f"{path} line {lineno}: not a collapsed-stack line: {line!r}"
            )
        out.append((tuple(stack.split(";")), int(count)))
    return out
