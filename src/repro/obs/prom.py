"""Prometheus text-format rendering of a metrics registry.

Production QoE systems (Ghasemi et al.'s characterization pipeline,
YouLighter's monitoring loop) live or die by keeping their measurements
scrapable; this module turns the pipeline's
:class:`~repro.obs.metrics.MetricsRegistry` — or its JSON snapshot from
a ``--trace-out`` document — into the Prometheus exposition format
(text/plain version 0.0.4):

* counters  -> ``# TYPE repro_x counter`` + one sample;
* gauges    -> gauge samples (including the ``online.*`` per-epoch
  gauges the :class:`~repro.core.online.OnlineDetector` maintains, so a
  long-running detector process is a ready scrape target);
* histograms -> Prometheus *summaries*: ``{quantile="0.5|0.95|0.99"}``
  samples from the deterministic reservoir plus ``_sum`` / ``_count``
  (and ``_min`` / ``_max`` gauges, which Prometheus summaries lack but
  cost nothing to expose).

Dotted metric names are sanitized to the ``[a-zA-Z_:][a-zA-Z0-9_:]*``
grammar with a ``repro_`` namespace prefix.
"""

from __future__ import annotations

import re
from typing import Any

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: Prefix namespacing every exported sample.
NAMESPACE = "repro_"


def sanitize_name(name: str, prefix: str = NAMESPACE) -> str:
    """A valid Prometheus metric name for a dotted registry name."""
    cleaned = _INVALID.sub("_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = f"_{cleaned}"
    return f"{prefix}{cleaned}"


def _format_value(value: Any) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(metrics: Any, prefix: str = NAMESPACE) -> str:
    """The registry (or its ``as_dict()`` snapshot) as exposition text.

    Accepts a live registry or the ``{"counters": ..., "gauges": ...,
    "histograms": ...}`` dict a trace JSON carries; unknown shapes raise
    ``ValueError`` (the CLI maps it to exit 2).
    """
    if hasattr(metrics, "as_dict"):
        metrics = metrics.as_dict()
    if not isinstance(metrics, dict):
        raise ValueError(
            f"expected a MetricsRegistry or its dict snapshot, "
            f"got {type(metrics).__name__}"
        )
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    histograms = metrics.get("histograms") or {}

    lines: list[str] = []
    for name in sorted(counters):
        metric = sanitize_name(name, prefix)
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")
    for name in sorted(gauges):
        metric = sanitize_name(name, prefix)
        lines.append(f"# HELP {metric} repro gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauges[name])}")
    for name in sorted(histograms):
        hist = histograms[name]
        if hasattr(hist, "as_dict"):
            hist = hist.as_dict()
        metric = sanitize_name(name, prefix)
        lines.append(f"# HELP {metric} repro histogram {name}")
        lines.append(f"# TYPE {metric} summary")
        for q in ("0.5", "0.95", "0.99"):
            key = f"p{int(float(q) * 100)}"
            if key in hist:
                lines.append(
                    f'{metric}{{quantile="{q}"}} '
                    f"{_format_value(hist[key])}"
                )
        lines.append(f"{metric}_sum {_format_value(hist.get('sum', 0.0))}")
        lines.append(f"{metric}_count {_format_value(hist.get('count', 0))}")
        for extra in ("min", "max", "mean"):
            if extra in hist:
                lines.append(
                    f"# TYPE {metric}_{extra} gauge"
                )
                lines.append(
                    f"{metric}_{extra} {_format_value(hist[extra])}"
                )
    return "\n".join(lines) + "\n" if lines else ""
