"""Process-wide metrics registry: counters, gauges, histograms.

The default registry is the no-op :data:`NULL_METRICS` singleton, so
instrumented code (``metrics.inc("shm.attach")``) costs one global read
and one empty method call unless a real :class:`MetricsRegistry` is
installed with :func:`use_metrics` — the CLI does this alongside the
tracer when ``--trace-out`` is given, and tests install one to assert
on counter values.

Histograms are intentionally tiny: count / sum / min / max per name.
That is enough to answer "how many, how much, how skewed" for the
pipeline's per-epoch and per-chunk observations without reservoir
machinery.
"""

from __future__ import annotations

import math
from typing import Any


class HistogramSummary:
    """Streaming count/sum/min/max summary of one observed series."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Counters, gauges and histogram summaries, keyed by dotted names."""

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, HistogramSummary] = {}

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = HistogramSummary()
        hist.observe(value)

    def get(self, name: str, default: float = 0) -> float:
        """Current counter value (0 when never incremented)."""
        return self.counters.get(name, default)

    def as_dict(self) -> dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.as_dict() for name, hist in self.histograms.items()
            },
        }


class NullMetrics:
    """Default registry: every operation is a no-op."""

    enabled = False

    def inc(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def get(self, name: str, default: float = 0) -> float:
        return default

    def as_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()
