"""Process-wide metrics registry: counters, gauges, histograms.

The default registry is the no-op :data:`NULL_METRICS` singleton, so
instrumented code (``metrics.inc("shm.attach")``) costs one global read
and one empty method call unless a real :class:`MetricsRegistry` is
installed with :func:`use_metrics` — the CLI does this alongside the
tracer when ``--trace-out`` is given, and tests install one to assert
on counter values.

Histograms are intentionally small: count / sum / min / max plus a
fixed-size uniform reservoir (Vitter's algorithm R, deterministically
seeded per histogram name) from which p50/p95/p99 are estimated —
mean/max alone hides the tail latency that matters for worker
queue-wait and per-epoch spans. Memory stays bounded regardless of how
many values are observed.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Any

#: Values kept per histogram for quantile estimation. 256 uniform
#: samples put the p99 estimate within a few percentiles of truth,
#: which is plenty for "did the tail move" regression checks.
RESERVOIR_SIZE = 256

#: Quantiles exported by every histogram summary.
QUANTILES = (0.5, 0.95, 0.99)


class HistogramSummary:
    """Streaming count/sum/min/max + reservoir-quantile summary.

    The reservoir is uniform over everything observed (algorithm R) and
    its RNG is seeded from ``seed`` — registries seed from the histogram
    name, so two runs observing the same series report identical
    quantile estimates (no run-to-run flap in diffs).
    """

    __slots__ = ("count", "total", "min", "max", "_reservoir", "_rng")

    def __init__(self, seed: int = 0) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: list[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < RESERVOIR_SIZE:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_SIZE:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (linear interpolation over the
        reservoir); 0.0 before anything is observed."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._reservoir:
            return 0.0
        data = sorted(self._reservoir)
        pos = q * (len(data) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def as_dict(self) -> dict:
        out = {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }
        for q in QUANTILES:
            out[f"p{int(q * 100)}"] = self.quantile(q)
        return out


class MetricsRegistry:
    """Counters, gauges and histogram summaries, keyed by dotted names."""

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, HistogramSummary] = {}

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            # Seed from the name: the same series observed by two runs
            # yields identical reservoirs, hence identical quantiles.
            hist = self.histograms[name] = HistogramSummary(
                seed=zlib.crc32(name.encode("utf-8"))
            )
        hist.observe(value)

    def get(self, name: str, default: float = 0) -> float:
        """Current counter value (0 when never incremented)."""
        return self.counters.get(name, default)

    def as_dict(self) -> dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.as_dict() for name, hist in self.histograms.items()
            },
        }


def render_histograms(metrics: "MetricsRegistry") -> str:
    """Human-readable histogram table (count/mean/p50/p95/p99/max).

    The tail-latency companion to ``Tracer.render`` — the CLI prints it
    under the span tree when ``--timings`` is given and histograms were
    observed. Empty string when there is nothing to show.
    """
    if not getattr(metrics, "histograms", None):
        return ""
    lines = [
        f"{'histogram':<32s} {'count':>8s} {'mean':>10s} {'p50':>10s} "
        f"{'p95':>10s} {'p99':>10s} {'max':>10s}"
    ]
    for name in sorted(metrics.histograms):
        hist = metrics.histograms[name]
        lines.append(
            f"{name:<32s} {hist.count:>8d} {hist.mean:>10.4g} "
            f"{hist.quantile(0.5):>10.4g} {hist.quantile(0.95):>10.4g} "
            f"{hist.quantile(0.99):>10.4g} "
            f"{(hist.max if hist.count else 0.0):>10.4g}"
        )
    return "\n".join(lines)


class NullMetrics:
    """Default registry: every operation is a no-op."""

    enabled = False

    def inc(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def get(self, name: str, default: float = 0) -> float:
        return default

    def as_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()
