"""Run comparison with typed verdicts: regressed / improved / neutral.

``obs diff`` and the journal-backed regression gate both reduce to the
same question: given two runs (or a run and a learned baseline), which
phases got slower *enough to mean something*? A verdict only leaves
``neutral`` when the change clears **both** a relative threshold and an
absolute floor — the same anti-flap discipline the paper's detector
applies to problem clusters (ratio multiplier AND minimum size):
relative-only flags microsecond phases that doubled from nothing,
absolute-only flags big phases for ordinary scheduler noise.

Inputs are journal records (:mod:`repro.obs.journal`) or records
synthesized from a ``--trace-out`` JSON via :func:`record_from_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs.analyze import load_trace_json, span_stats

REGRESSED = "regressed"
IMPROVED = "improved"
NEUTRAL = "neutral"
ADDED = "added"
REMOVED = "removed"


@dataclass(frozen=True)
class DiffThresholds:
    """Noise gates. A phase regresses only when the change exceeds the
    relative threshold AND the absolute floor for its unit."""

    rel: float = 0.25
    abs_s: float = 0.25
    abs_bytes: int = 64 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.rel < 0 or self.abs_s < 0 or self.abs_bytes < 0:
            raise ValueError("diff thresholds must be non-negative")


@dataclass(frozen=True)
class Verdict:
    """One compared quantity and its classification."""

    kind: str  # "phase" | "resource" | "counter"
    name: str
    before: float | None
    after: float | None
    verdict: str  # regressed | improved | neutral | added | removed

    @property
    def rel_change(self) -> float | None:
        if self.before is None or self.after is None:
            return None
        if self.before == 0:
            return None if self.after == 0 else float("inf")
        return (self.after - self.before) / self.before

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "before": self.before,
            "after": self.after,
            "verdict": self.verdict,
            "rel_change": self.rel_change,
        }


def classify(
    before: float,
    after: float,
    rel: float,
    abs_floor: float,
    higher_is_worse: bool = True,
) -> str:
    """Three-way verdict under the rel+abs noise gate."""
    delta = after - before
    if abs(delta) <= abs_floor:
        return NEUTRAL
    if before <= 0:
        worse = delta > 0
    else:
        ratio = delta / before
        if abs(ratio) <= rel:
            return NEUTRAL
        worse = ratio > 0
    if not higher_is_worse:
        worse = not worse
    return REGRESSED if worse else IMPROVED


@dataclass
class DiffResult:
    """All verdicts of one comparison, plus render/summary helpers."""

    before_id: str
    after_id: str
    verdicts: list[Verdict]
    thresholds: DiffThresholds

    def by_verdict(self, verdict: str) -> list[Verdict]:
        return [v for v in self.verdicts if v.verdict == verdict]

    @property
    def n_regressed(self) -> int:
        return len(self.by_verdict(REGRESSED))

    @property
    def n_improved(self) -> int:
        return len(self.by_verdict(IMPROVED))

    @property
    def has_regressions(self) -> bool:
        return self.n_regressed > 0

    def summary(self) -> str:
        neutral = len(self.verdicts) - self.n_regressed - self.n_improved
        return (
            f"{self.before_id} -> {self.after_id}: "
            f"{self.n_regressed} regressed, {self.n_improved} improved, "
            f"{neutral} neutral "
            f"(thresholds: rel {self.thresholds.rel:.0%}, "
            f"abs {self.thresholds.abs_s:g}s)"
        )

    def render(self) -> str:
        from repro.analysis.render import render_table

        rows = []
        for v in self.verdicts:
            rel = v.rel_change
            rows.append(
                [
                    v.kind,
                    v.name,
                    "-" if v.before is None else f"{v.before:.4g}",
                    "-" if v.after is None else f"{v.after:.4g}",
                    "-" if rel is None else f"{100.0 * rel:+.1f}%",
                    v.verdict,
                ]
            )
        table = render_table(
            ["Kind", "Name", "Before", "After", "Change", "Verdict"],
            rows,
            title=f"Diff {self.before_id} -> {self.after_id}",
        )
        return f"{table}\n{self.summary()}"


def record_from_trace(path: str | Path) -> dict[str, Any]:
    """Synthesize a diffable record from a ``--trace-out`` JSON file.

    Pulls phases from the span tree and, when the sibling
    ``<stem>.manifest.json`` exists, duration / peak RSS / metrics from
    the manifest; a missing manifest degrades to trace-only fields.
    """
    import json

    from repro.obs.sinks import manifest_path_for

    path = Path(path)
    payload = load_trace_json(path)
    tree = payload["trace"]
    record: dict[str, Any] = {
        "run_id": path.name,
        "command": tree.get("name", "run"),
        "duration_s": float(tree.get("duration_s", 0.0)),
        "peak_rss_bytes": None,
        "phases": {
            name: stats.as_dict() for name, stats in span_stats(tree).items()
        },
        "metrics": payload.get("metrics")
        or {"counters": {}, "gauges": {}, "histograms": {}},
    }
    manifest_path = manifest_path_for(path)
    if manifest_path.is_file():
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            manifest = {}
        record["command"] = manifest.get("command", record["command"])
        record["peak_rss_bytes"] = manifest.get("peak_rss_bytes")
        if manifest.get("duration_s"):
            record["duration_s"] = manifest["duration_s"]
    return record


def diff_records(
    before: dict[str, Any],
    after: dict[str, Any],
    thresholds: DiffThresholds | None = None,
) -> DiffResult:
    """Phase-by-phase and metric-by-metric comparison of two records.

    * phases — per-name total span time, rel+abs gated;
    * resources — overall duration and peak RSS (bytes floor);
    * counters — ``degraded.*`` increases regress outright (a degraded
      path is never noise); other changed counters are reported neutral
      so behavioural drift is visible without flapping the verdict.
    """
    thresholds = thresholds or DiffThresholds()
    verdicts: list[Verdict] = []

    a_phases = before.get("phases") or {}
    b_phases = after.get("phases") or {}
    for name in list(a_phases) + [n for n in b_phases if n not in a_phases]:
        a = a_phases.get(name)
        b = b_phases.get(name)
        if a is None:
            verdicts.append(
                Verdict("phase", name, None, float(b["total_s"]), ADDED)
            )
            continue
        if b is None:
            verdicts.append(
                Verdict("phase", name, float(a["total_s"]), None, REMOVED)
            )
            continue
        a_total, b_total = float(a["total_s"]), float(b["total_s"])
        verdicts.append(
            Verdict(
                "phase", name, a_total, b_total,
                classify(a_total, b_total, thresholds.rel, thresholds.abs_s),
            )
        )

    a_dur = float(before.get("duration_s") or 0.0)
    b_dur = float(after.get("duration_s") or 0.0)
    verdicts.append(
        Verdict(
            "resource", "duration_s", a_dur, b_dur,
            classify(a_dur, b_dur, thresholds.rel, thresholds.abs_s),
        )
    )
    a_rss, b_rss = before.get("peak_rss_bytes"), after.get("peak_rss_bytes")
    if a_rss is not None and b_rss is not None:
        verdicts.append(
            Verdict(
                "resource", "peak_rss_bytes", float(a_rss), float(b_rss),
                classify(
                    float(a_rss), float(b_rss),
                    thresholds.rel, float(thresholds.abs_bytes),
                ),
            )
        )

    a_counters = (before.get("metrics") or {}).get("counters") or {}
    b_counters = (after.get("metrics") or {}).get("counters") or {}
    for name in sorted(set(a_counters) | set(b_counters)):
        a_val = float(a_counters.get(name, 0.0))
        b_val = float(b_counters.get(name, 0.0))
        if a_val == b_val:
            continue
        if name.startswith("degraded."):
            verdict = REGRESSED if b_val > a_val else IMPROVED
        else:
            verdict = NEUTRAL
        verdicts.append(Verdict("counter", name, a_val, b_val, verdict))

    return DiffResult(
        before_id=str(before.get("run_id", "before")),
        after_id=str(after.get("run_id", "after")),
        verdicts=verdicts,
        thresholds=thresholds,
    )


def diff_against_baseline(
    journal,
    record: dict[str, Any],
    k: int = 5,
    thresholds: DiffThresholds | None = None,
) -> DiffResult | None:
    """Diff ``record`` against the journal's last-``k`` matching-run
    baseline (``None`` when the journal has no matching history)."""
    baseline = journal.baseline(record, k=k)
    if baseline is None:
        return None
    return diff_records(baseline, record, thresholds)
