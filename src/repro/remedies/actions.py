"""Concrete remedial actions and their causal model.

A :class:`Remedy` bundles two transformations applied before
re-generating a trace:

* a **world transform** — the structural change (a site's CDN policy
  gains entries, its ladder gains rungs, ...);
* an **event attenuation** — planted ground-truth events whose cause
  the remedy addresses lose a fraction of their effect.

The attenuation model: removing fraction ``a`` of a pathology moves
each multiplicative effect toward neutral in log space
(``factor^(1-a)``) and relaxes absolute bitrate caps proportionally
(``cap / (1-a)``, unbounded at ``a = 1``). ``a`` reflects how much of
the affected traffic the remedy actually reroutes/serves better — e.g.
contracting CDNs that will carry 60% of a site's sessions attenuates
that site's delivery-side events by 0.6.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.trace.entities import SiteProfile, World
from repro.trace.events import EventEffects, GroundTruthEvent

#: Effect fields attenuated in log space (multiplicative, neutral 1.0).
_FACTOR_FIELDS = (
    "bandwidth_factor",
    "buffering_factor",
    "join_time_factor",
    "join_failure_odds",
)


def attenuated_effects(effects: EventEffects, fraction: float) -> EventEffects:
    """Remove ``fraction`` of an event's pathology (0 = no-op, 1 = cured)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("attenuation fraction must be in [0, 1]")
    if fraction == 0.0:
        return effects
    keep = 1.0 - fraction
    kwargs = {
        name: getattr(effects, name) ** keep for name in _FACTOR_FIELDS
    }
    cap = effects.bitrate_cap_kbps
    if cap != float("inf"):
        kwargs["bitrate_cap_kbps"] = float("inf") if keep <= 1e-9 else cap / keep
    return EventEffects(**kwargs)


@dataclass(frozen=True)
class Remedy:
    """One remedial action with its causal footprint."""

    name: str
    description: str
    #: Structural change to the world (None = events-only remedy).
    world_transform: Callable[[World], World] | None
    #: Fraction of each event's pathology removed (0 to skip).
    event_attenuation: Callable[[GroundTruthEvent], float]

    def apply_world(self, world: World) -> World:
        if self.world_transform is None:
            return world
        return self.world_transform(world)

    def apply_event(self, event: GroundTruthEvent) -> GroundTruthEvent:
        fraction = self.event_attenuation(event)
        if fraction <= 0.0:
            return event
        return replace(event, effects=attenuated_effects(event.effects, fraction))


def _replace_site(world: World, site_index: int, new_site: SiteProfile) -> World:
    sites = list(world.sites)
    sites[site_index] = new_site
    return World(
        config=world.config, asns=world.asns, cdns=world.cdns, sites=sites
    )


def _constrains(event: GroundTruthEvent, attribute: str, value: str) -> bool:
    return (attribute, value) in event.constraints


def contract_additional_cdns(
    world: World,
    site_name: str,
    new_cdn_names: Sequence[str],
    traffic_share: float = 0.6,
) -> Remedy:
    """Multi-CDN contracting for a site (paper: low-priority sites on a
    single shared CDN "could have potentially benefited from using
    multiple CDNs").

    ``traffic_share`` of the site's sessions move to the new CDNs;
    delivery-side events pinned to the site (join failures/join times)
    attenuate by that share.
    """
    if not new_cdn_names:
        raise ValueError("need at least one new CDN")
    if not 0 < traffic_share < 1:
        raise ValueError("traffic_share must be in (0, 1)")
    site_index = world.site_index(site_name)
    new_indices = tuple(world.cdn_index(name) for name in new_cdn_names)
    site = world.sites[site_index]
    overlap = set(new_indices) & set(site.cdn_indices)
    if overlap:
        raise ValueError(
            f"site already uses CDN indices {sorted(overlap)}"
        )

    def transform(w: World) -> World:
        old = w.sites[site_index]
        old_weights = tuple(
            weight * (1.0 - traffic_share) for weight in old.cdn_weights
        )
        added = tuple(traffic_share / len(new_indices) for _ in new_indices)
        return _replace_site(
            w,
            site_index,
            replace(
                old,
                cdn_indices=old.cdn_indices + new_indices,
                cdn_weights=old_weights + added,
            ),
        )

    def attenuation(event: GroundTruthEvent) -> float:
        if not _constrains(event, "site", site_name):
            return 0.0
        if event.primary_metric in ("join_failure", "join_time"):
            return traffic_share
        return 0.0

    return Remedy(
        name=f"multi-cdn:{site_name}",
        description=(
            f"contract {', '.join(new_cdn_names)} for {site_name} "
            f"({traffic_share:.0%} of traffic shifted)"
        ),
        world_transform=transform,
        event_attenuation=attenuation,
    )


def add_bitrate_rungs(
    world: World, site_name: str, new_ladder: Sequence[float]
) -> Remedy:
    """Offer a finer-grained ladder (paper: "simple solutions such as
    offering a more fine-grained selection of bitrates").

    Fully cures single-bitrate structural buffering events on the site
    (the pathology *is* the missing rungs) and lifts bitrate caps by
    the same logic.
    """
    site_index = world.site_index(site_name)
    ladder = tuple(sorted(float(b) for b in new_ladder))
    if len(ladder) <= len(world.sites[site_index].ladder):
        raise ValueError("new ladder must add rungs")

    def transform(w: World) -> World:
        return _replace_site(
            w, site_index, replace(w.sites[site_index], ladder=ladder)
        )

    def attenuation(event: GroundTruthEvent) -> float:
        if not _constrains(event, "site", site_name):
            return 0.0
        if event.primary_metric in ("buffering_ratio", "bitrate"):
            return 1.0
        return 0.0

    return Remedy(
        name=f"ladder:{site_name}",
        description=f"expand {site_name} ladder to {len(ladder)} rungs",
        world_transform=transform,
        event_attenuation=attenuation,
    )


def upgrade_cdn(world: World, cdn_name: str, fraction: float = 0.8) -> Remedy:
    """Provision/upgrade a CDN (paper: infrastructure upgrades).

    Attenuates every event pinned to the CDN by ``fraction`` — an
    upgraded edge fixes most, not necessarily all, of its pathology.
    """
    world.cdn_index(cdn_name)  # validate
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")

    def attenuation(event: GroundTruthEvent) -> float:
        if _constrains(event, "cdn", cdn_name):
            return fraction
        return 0.0

    return Remedy(
        name=f"upgrade:{cdn_name}",
        description=f"upgrade {cdn_name} capacity/priority ({fraction:.0%} cure)",
        world_transform=None,
        event_attenuation=attenuation,
    )


def peer_with_isp(world: World, asn_name: str, fraction: float = 0.7) -> Remedy:
    """Local peering / regional CDN contract for an ISP's users
    (paper: "problems associated with non-US users may be alleviated by
    contracting with local CDN operators")."""
    world.asn_index(asn_name)  # validate
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")

    def attenuation(event: GroundTruthEvent) -> float:
        if _constrains(event, "asn", asn_name):
            return fraction
        return 0.0

    return Remedy(
        name=f"peering:{asn_name}",
        description=f"local peering for {asn_name} ({fraction:.0%} cure)",
        world_transform=None,
        event_attenuation=attenuation,
    )
