"""Generator-level evaluation of remedies.

Section 5 of the paper estimates improvement by *accounting* (reduce a
cluster's problem ratio to the global average). With a generative
substrate we can do better: apply the remedy's causal transformations
(world + event attenuation) and re-generate the trace from the same
seeds, then compare measured problem ratios. The comparison is paired
at the distribution level — identical seeds drive arrivals and
sampling, so differences reflect the remedy, not resampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.render import render_table
from repro.core.metrics import ALL_METRICS, MetricThresholds, QualityMetric
from repro.core.sessions import SessionTable
from repro.remedies.actions import Remedy
from repro.trace.events import EventCatalog
from repro.trace.generator import GeneratedTrace, generate_trace
from repro.trace.workloads import WorkloadSpec


@dataclass
class MetricDelta:
    """Problem-ratio change for one metric."""

    metric: str
    baseline_ratio: float
    remedied_ratio: float
    baseline_problems: int
    remedied_problems: int

    @property
    def absolute_reduction(self) -> float:
        return self.baseline_ratio - self.remedied_ratio

    @property
    def relative_reduction(self) -> float:
        if self.baseline_ratio == 0:
            return 0.0
        return self.absolute_reduction / self.baseline_ratio


@dataclass
class RemedyEvaluation:
    """Before/after comparison for a set of remedies."""

    remedies: list[Remedy]
    baseline: GeneratedTrace
    remedied: GeneratedTrace
    deltas: dict[str, MetricDelta] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            [
                d.metric,
                d.baseline_ratio,
                d.remedied_ratio,
                d.absolute_reduction,
                d.relative_reduction,
            ]
            for d in self.deltas.values()
        ]
        title = "Remedy evaluation: " + "; ".join(
            r.description for r in self.remedies
        )
        return render_table(
            ["Metric", "Baseline ratio", "Remedied ratio",
             "Absolute reduction", "Relative reduction"],
            rows,
            title=title,
        )


def _problem_stats(
    table: SessionTable, metric: QualityMetric, thresholds: MetricThresholds
) -> tuple[float, int]:
    valid = metric.valid_mask(table)
    problems = metric.problem_mask(table, thresholds)
    n_valid = int(valid.sum())
    n_problems = int(problems.sum())
    return (n_problems / n_valid if n_valid else 0.0), n_problems


def evaluate_remedies(
    spec: WorkloadSpec,
    remedies: Sequence[Remedy],
    metrics: Sequence[QualityMetric] = ALL_METRICS,
    thresholds: MetricThresholds | None = None,
    baseline: GeneratedTrace | None = None,
) -> RemedyEvaluation:
    """Apply ``remedies`` and re-generate the trace for comparison.

    ``baseline`` may be passed to avoid regenerating it (it must have
    been produced from the same ``spec``).
    """
    if not remedies:
        raise ValueError("need at least one remedy")
    thresholds = thresholds or MetricThresholds()
    if baseline is None:
        baseline = generate_trace(spec)
    elif baseline.spec.seed != spec.seed or baseline.spec.name != spec.name:
        raise ValueError("baseline trace was generated from a different spec")

    world = baseline.world
    for remedy in remedies:
        world = remedy.apply_world(world)
    events = list(baseline.catalog)
    for remedy in remedies:
        events = [remedy.apply_event(e) for e in events]
    remedied = generate_trace(spec, world=world, catalog=EventCatalog(events))

    evaluation = RemedyEvaluation(
        remedies=list(remedies), baseline=baseline, remedied=remedied
    )
    for metric in metrics:
        base_ratio, base_problems = _problem_stats(
            baseline.table, metric, thresholds
        )
        new_ratio, new_problems = _problem_stats(
            remedied.table, metric, thresholds
        )
        evaluation.deltas[metric.name] = MetricDelta(
            metric=metric.name,
            baseline_ratio=base_ratio,
            remedied_ratio=new_ratio,
            baseline_problems=base_problems,
            remedied_problems=new_problems,
        )
    return evaluation
