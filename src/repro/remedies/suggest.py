"""Remedy suggestion from detected critical clusters.

The paper's Table 3 pairs each prevalent critical-cluster pattern with
a plausible fix ("could have potentially benefited from using multiple
CDNs", "offering a more fine-grained selection of bitrates",
"contracting with local CDN operators"). This module encodes that
playbook: given a metric analysis and the world, it maps the
top-coverage critical clusters to concrete :class:`Remedy` objects
with a human-readable rationale.

Rules (attribute type x metric):

* ``site`` + join failure/join time, site uses a single CDN ->
  contract additional CDNs;
* ``site`` + buffering/bitrate, site has a coarse ladder ->
  add bitrate rungs;
* ``cdn`` + anything -> upgrade the CDN;
* ``asn`` (or a region) + anything -> local peering for the ISP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.whatif import rank_critical_clusters
from repro.core.clusters import ClusterKey
from repro.core.pipeline import MetricAnalysis
from repro.remedies.actions import (
    Remedy,
    add_bitrate_rungs,
    contract_additional_cdns,
    peer_with_isp,
    upgrade_cdn,
)
from repro.trace.entities import World

#: Default ladder offered to sites with too few rungs.
FINE_LADDER = (400.0, 800.0, 1_600.0, 3_000.0, 5_000.0)


@dataclass
class SuggestedRemedy:
    """A remedy plus the detection that motivated it."""

    remedy: Remedy
    cluster: ClusterKey
    metric: str
    rationale: str


def _cdn_candidates(world: World, site_index: int, n: int = 2) -> list[str]:
    """Healthy global CDNs the site does not already use."""
    used = set(world.sites[site_index].cdn_indices)
    candidates = [
        (c.failure_prob, c.name)
        for i, c in enumerate(world.cdns)
        if i not in used and c.kind in ("global", "datacenter")
    ]
    candidates.sort()
    return [name for _, name in candidates[:n]]


def _suggest_for_cluster(
    world: World, key: ClusterKey, metric: str
) -> SuggestedRemedy | None:
    if key.depth != 1:
        return None
    attribute = key.attributes[0]
    value = key.value_of(attribute)

    if attribute == "site":
        try:
            site_index = world.site_index(value)
        except KeyError:
            return None
        site = world.sites[site_index]
        if metric in ("join_failure", "join_time") and len(site.cdn_indices) <= 2:
            new_cdns = _cdn_candidates(world, site_index)
            if not new_cdns:
                return None
            return SuggestedRemedy(
                remedy=contract_additional_cdns(world, value, new_cdns),
                cluster=key,
                metric=metric,
                rationale=(
                    f"{value} shows {metric} problems and uses only "
                    f"{len(site.cdn_indices)} CDN(s): multi-home it"
                ),
            )
        if metric in ("buffering_ratio", "bitrate") and len(site.ladder) < 4:
            ladder = tuple(sorted(set(FINE_LADDER) | set(site.ladder)))
            return SuggestedRemedy(
                remedy=add_bitrate_rungs(world, value, ladder),
                cluster=key,
                metric=metric,
                rationale=(
                    f"{value} shows {metric} problems with a "
                    f"{len(site.ladder)}-rung ladder: offer finer bitrates"
                ),
            )
        return None

    if attribute == "cdn":
        try:
            world.cdn_index(value)
        except KeyError:
            return None
        return SuggestedRemedy(
            remedy=upgrade_cdn(world, value),
            cluster=key,
            metric=metric,
            rationale=f"{value} is itself a critical cluster for {metric}: "
            "upgrade or re-prioritise it",
        )

    if attribute == "asn":
        try:
            world.asn_index(value)
        except KeyError:
            return None
        return SuggestedRemedy(
            remedy=peer_with_isp(world, value),
            cluster=key,
            metric=metric,
            rationale=f"{value}'s users suffer {metric} problems: "
            "contract local CDN capacity / peering",
        )

    # Connection types and combinations have no single-principal fix.
    return None


def suggest_remedies(
    world: World,
    ma: MetricAnalysis,
    top_k: int = 5,
) -> list[SuggestedRemedy]:
    """Suggestions for one metric's top-coverage critical clusters."""
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    suggestions: list[SuggestedRemedy] = []
    seen: set[str] = set()
    for key in rank_critical_clusters(ma, by="coverage")[:top_k]:
        suggestion = _suggest_for_cluster(world, key, ma.metric.name)
        if suggestion is None or suggestion.remedy.name in seen:
            continue
        seen.add(suggestion.remedy.name)
        suggestions.append(suggestion)
    return suggestions
