"""Automated remediation — closing the loop the paper leaves open.

Section 6 of the paper: *"A more comprehensive solution will involve an
automated system that identifies the bottleneck as well as provides
remedial actions."* This package is that system, made possible by the
generative substrate:

* :mod:`repro.remedies.actions` — concrete remedies with a causal
  model: contracting extra CDNs for a single-CDN site, adding bitrate
  rungs to a single-bitrate site, upgrading a CDN, peering with an ISP.
  Each remedy transforms the world and/or attenuates the planted
  events it addresses.
* :mod:`repro.remedies.suggest` — maps detected critical clusters to
  candidate remedies using the paper's Table 3 playbook (single-CDN
  site with join failures -> multi-CDN; single-bitrate site with
  buffering -> finer ladder; ...).
* :mod:`repro.remedies.evaluate` — *generator-level* what-if: re-run
  the trace with the remedy applied (same seeds) and measure the
  problem-ratio change per metric, rather than the accounting-level
  reduction of Section 5.
"""

from repro.remedies.actions import (
    Remedy,
    add_bitrate_rungs,
    attenuated_effects,
    contract_additional_cdns,
    peer_with_isp,
    upgrade_cdn,
)
from repro.remedies.evaluate import RemedyEvaluation, evaluate_remedies
from repro.remedies.suggest import SuggestedRemedy, suggest_remedies

__all__ = [
    "Remedy",
    "add_bitrate_rungs",
    "attenuated_effects",
    "contract_additional_cdns",
    "peer_with_isp",
    "upgrade_cdn",
    "RemedyEvaluation",
    "evaluate_remedies",
    "SuggestedRemedy",
    "suggest_remedies",
]
