"""Experiment registry: one runner per table/figure of the paper."""

from repro.experiments.context import ExperimentContext, default_context
from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    get_experiment,
    run_experiment,
)
from repro.experiments.runners import ExperimentResult

__all__ = [
    "ExperimentContext",
    "default_context",
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "run_experiment",
    "ExperimentResult",
]
