"""Shared experiment context: one generated trace + its full analysis.

Every figure/table runner consumes an :class:`ExperimentContext`. The
standard contexts are cached per (workload, seed) so the benchmark
harness pays for generation and pipeline analysis once and each bench
times only its own computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.pipeline import (
    AnalysisConfig,
    MetricAnalysis,
    TraceAnalysis,
    analyze_trace,
    restrict_epochs,
)
from repro.trace.generator import GeneratedTrace, generate_trace
from repro.trace.workloads import StandardWorkloads


@dataclass
class ExperimentContext:
    """A trace, its ground truth, and the full pipeline analysis."""

    trace: GeneratedTrace
    analysis: TraceAnalysis

    @classmethod
    def generate(
        cls,
        workload: str = "week",
        seed: int = 42,
        config: AnalysisConfig | None = None,
        workers: int | str | None = None,
        engine: str | None = None,
    ) -> "ExperimentContext":
        """Generate a workload and analyze it.

        ``workers`` selects the epoch-parallel executor and ``engine``
        the reduction strategy (see
        :func:`repro.core.pipeline.analyze_trace`); both change wall
        time only, never results.
        """
        trace = generate_trace(StandardWorkloads.by_name(workload, seed=seed))
        analysis = analyze_trace(
            trace.table, config=config, grid=trace.grid, workers=workers,
            engine=engine,
        )
        return cls(trace=trace, analysis=analysis)

    @property
    def n_epochs(self) -> int:
        return self.analysis.grid.n_epochs

    def metric(self, name: str) -> MetricAnalysis:
        return self.analysis[name]

    def split(self, name: str, train_epochs: range, test_epochs: range
              ) -> tuple[MetricAnalysis, MetricAnalysis]:
        """Train/test epoch split of one metric's analysis."""
        ma = self.analysis[name]
        return (
            restrict_epochs(ma, list(train_epochs)),
            restrict_epochs(ma, list(test_epochs)),
        )


@lru_cache(maxsize=4)
def default_context(workload: str = "week", seed: int = 42) -> ExperimentContext:
    """Cached standard context (shared across benches in one process)."""
    return ExperimentContext.generate(workload=workload, seed=seed)
