"""Shared experiment context: one generated trace + its full analysis.

Every figure/table runner consumes an :class:`ExperimentContext`. The
standard contexts are cached per (workload, seed) so the benchmark
harness pays for generation and pipeline analysis once and each bench
times only its own computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Sequence

from repro.core.pipeline import (
    AnalysisConfig,
    MetricAnalysis,
    TraceAnalysis,
    analyze_trace,
    resolve_engine,
    restrict_epochs,
)
from repro.core.substrate import AnalysisSubstrate, analyze_sweep
from repro.trace.generator import GeneratedTrace, generate_trace
from repro.trace.workloads import StandardWorkloads


@dataclass
class ExperimentContext:
    """A trace, its ground truth, and the full pipeline analysis.

    When the analysis ran through the indexed engine the context also
    keeps the :class:`AnalysisSubstrate`, so follow-up config variants
    (:meth:`sweep`, :meth:`reanalyze`) reuse the packed table and
    cluster index instead of rebuilding them.
    """

    trace: GeneratedTrace
    analysis: TraceAnalysis
    substrate: AnalysisSubstrate | None = field(default=None, repr=False)

    @classmethod
    def generate(
        cls,
        workload: str = "week",
        seed: int = 42,
        config: AnalysisConfig | None = None,
        workers: int | str | None = None,
        engine: str | None = None,
        transport: str | None = None,
    ) -> "ExperimentContext":
        """Generate a workload and analyze it.

        ``workers`` selects the epoch-parallel executor, ``engine`` the
        reduction strategy and ``transport`` the worker hand-off (see
        :func:`repro.core.pipeline.analyze_trace`); all three change
        wall time only, never results.
        """
        trace = generate_trace(StandardWorkloads.by_name(workload, seed=seed))
        config = config or AnalysisConfig()
        substrate = None
        if resolve_engine(engine if engine is not None else config.engine) == "indexed":
            substrate = AnalysisSubstrate.build(trace.table)
        analysis = analyze_trace(
            trace.table, config=config, grid=trace.grid, workers=workers,
            engine=engine, transport=transport, substrate=substrate,
        )
        return cls(trace=trace, analysis=analysis, substrate=substrate)

    def sweep(
        self,
        configs: Sequence[AnalysisConfig],
        workers: int | str | None = None,
        transport: str | None = None,
    ) -> list[TraceAnalysis]:
        """Analyze config variants, reusing this context's substrate.

        Results are bit-identical to independent ``analyze_trace``
        calls per config (each at its own ``epoch_seconds``).
        """
        return analyze_sweep(
            self.trace.table,
            configs,
            substrate=self.substrate,
            workers=workers,
            transport=transport,
        )

    def reanalyze(
        self,
        config: AnalysisConfig,
        workers: int | str | None = None,
        transport: str | None = None,
    ) -> TraceAnalysis:
        """One config variant over the cached substrate."""
        return self.sweep([config], workers=workers, transport=transport)[0]

    @property
    def n_epochs(self) -> int:
        return self.analysis.grid.n_epochs

    def metric(self, name: str) -> MetricAnalysis:
        return self.analysis[name]

    def split(self, name: str, train_epochs: range, test_epochs: range
              ) -> tuple[MetricAnalysis, MetricAnalysis]:
        """Train/test epoch split of one metric's analysis."""
        ma = self.analysis[name]
        return (
            restrict_epochs(ma, list(train_epochs)),
            restrict_epochs(ma, list(test_epochs)),
        )


@lru_cache(maxsize=4)
def default_context(workload: str = "week", seed: int = 42) -> ExperimentContext:
    """Cached standard context (shared across benches in one process)."""
    return ExperimentContext.generate(workload=workload, seed=seed)
