"""Registry of every reproducible experiment.

Maps the paper's figure/table ids to runners; drives the CLI's
``experiment`` subcommand, the benchmark harness and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import runners
from repro.experiments.context import ExperimentContext
from repro.experiments.runners import ExperimentResult


@dataclass(frozen=True)
class Experiment:
    """One registered experiment."""

    experiment_id: str
    title: str
    paper_ref: str
    workload: str  # workload the paper-faithful run uses
    runner: Callable[[ExperimentContext], ExperimentResult]

    def run(self, ctx: ExperimentContext) -> ExperimentResult:
        return self.runner(ctx)


EXPERIMENTS: dict[str, Experiment] = {
    e.experiment_id: e
    for e in (
        Experiment("fig1", "Quality metric CDFs", "Figure 1", "week", runners.run_fig1),
        Experiment("fig2", "Problem-session timeseries", "Figure 2", "week",
                   runners.run_fig2),
        Experiment("fig7", "Problem-cluster prevalence", "Figure 7", "week",
                   runners.run_fig7),
        Experiment("fig8", "Problem-cluster persistence", "Figure 8(a,b)", "week",
                   runners.run_fig8),
        Experiment("fig9", "Cluster count timeseries", "Figure 9", "week",
                   runners.run_fig9),
        Experiment("tab1", "Critical-cluster coverage", "Table 1", "week",
                   runners.run_table1),
        Experiment("fig10", "Critical-cluster type breakdown", "Figure 10", "week",
                   runners.run_fig10),
        Experiment("tab2", "Cross-metric Jaccard overlap", "Table 2", "week",
                   runners.run_table2),
        Experiment("tab3", "Most prevalent critical clusters", "Table 3", "week",
                   runners.run_table3),
        Experiment("fig11", "Top-k improvement curves", "Figure 11(a,b,c)", "week",
                   runners.run_fig11),
        Experiment("fig12", "Attribute-restricted selection", "Figure 12", "week",
                   runners.run_fig12),
        Experiment("tab4", "Proactive what-if", "Table 4", "two_weeks",
                   runners.run_table4),
        Experiment("fig13", "Reactive repair timeseries", "Figure 13", "week",
                   runners.run_fig13),
        Experiment("tab5", "Reactive what-if", "Table 5", "week",
                   runners.run_table5),
        Experiment("validation", "Ground-truth validation", "(substrate)", "week",
                   runners.run_validation),
        Experiment("abl-threshold", "Threshold sensitivity", "(ablation)", "week",
                   runners.run_ablation_thresholds),
        Experiment("abl-hhh", "HHH baseline comparison", "(ablation)", "week",
                   runners.run_ablation_hhh),
        Experiment("abl-engine", "Engine agreement", "(ablation)", "week",
                   runners.run_ablation_engines),
        Experiment("abl-scale", "Scale ablation", "(ablation)", "week",
                   runners.run_ablation_scale),
        Experiment("abl-parallel", "Pipeline engine ablation", "(ablation)", "week",
                   runners.run_ablation_parallel),
        Experiment("abl-epoch", "Epoch-length sensitivity", "(ablation)", "week",
                   runners.run_ablation_epoch_length),
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(
    experiment_id: str, ctx: ExperimentContext
) -> ExperimentResult:
    return get_experiment(experiment_id).run(ctx)
