"""Experiment runners — one per table/figure of the paper's evaluation.

Each runner consumes an :class:`ExperimentContext` and returns an
:class:`ExperimentResult` holding printable text (the same rows/series
the paper reports) and the raw data (for EXPERIMENTS.md and tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
import numpy as np

from repro.analysis.breakdown import critical_type_breakdown
from repro.analysis.cdfs import default_grid, headline_statistics, quality_cdfs
from repro.analysis.render import render_kv, render_series, render_table
from repro.analysis.tables import (
    coverage_table,
    jaccard_table,
    prevalent_critical_clusters,
)
from repro.analysis.timeseries import (
    cluster_count_timeseries,
    cross_metric_correlation,
    problem_ratio_timeseries,
)
from repro.analysis.validation import validate_all
from repro.analysis.whatif import (
    attribute_restricted_curves,
    proactive_simulation,
    reactive_simulation,
    topk_improvement_curve,
)
from repro.core.aggregation import aggregate_epoch
from repro.core.epoching import split_into_epochs
from repro.core.hhh import HHHConfig, find_hierarchical_heavy_hitters
from repro.core.metrics import MetricThresholds, metric_by_name
from repro.core.pipeline import AnalysisConfig, analyze_trace
from repro.core.problems import ProblemClusterConfig
from repro.core.substrate import analyze_sweep
from repro.core.streaks import (
    max_persistence_values,
    median_persistence_values,
    prevalence_values,
)
from repro.experiments.context import ExperimentContext
from repro.trace.generator import generate_trace
from repro.trace.workloads import StandardWorkloads

#: Metric display order matching the paper's tables.
METRIC_ORDER = ("buffering_ratio", "bitrate", "join_time", "join_failure")


@dataclass
class ExperimentResult:
    """Printable + machine-readable output of one experiment."""

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.text


def _inverse_cdf(values: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Fraction of ``values`` >= each grid point (Figs. 7/8 y-axis)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        return np.zeros(grid.size)
    below = np.searchsorted(values, grid, side="left")
    return 1.0 - below / values.size


# ---------------------------------------------------------------------------
# Figures 1-2: dataset-level statistics
# ---------------------------------------------------------------------------
def run_fig1(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 1: CDFs of buffering ratio, bitrate and join time."""
    cdfs = quality_cdfs(ctx.trace.table)
    blocks = []
    data: dict = {"headline": headline_statistics(ctx.trace.table)}
    for name, ecdf in cdfs.items():
        grid = default_grid(metric_by_name(name))
        x, y = ecdf.curve(grid)
        data[name] = {"x": x.tolist(), "cdf": y.tolist()}
        blocks.append(
            render_series(
                x, {"CDF": y}, x_label=name, title=f"Figure 1 — CDF of {name}",
                max_rows=14,
            )
        )
    blocks.append(render_kv(data["headline"], title="Headline statistics"))
    return ExperimentResult("fig1", "Quality metric CDFs", "\n\n".join(blocks), data)


def run_fig2(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 2: hourly problem-session fraction per metric."""
    series = problem_ratio_timeseries(ctx.analysis)
    hours = next(iter(series.values())).hours
    table = {name: s.ratio for name, s in series.items()}
    corr = cross_metric_correlation(ctx.analysis)
    text = render_series(
        hours, table, x_label="hour",
        title="Figure 2 — fraction of problem sessions per hour", max_rows=24,
    )
    stats = {
        f"{name}: mean/std": f"{s.mean:.3f}/{s.std:.4f}" for name, s in series.items()
    }
    text += "\n\n" + render_kv(stats, title="Consistency (paper: mean ~0.1, tiny std)")
    text += "\n\n" + render_kv(
        {f"corr({a},{b})": v for (a, b), v in corr.items()},
        title="Temporal correlation between metrics (paper: weak)",
    )
    data = {
        "hours": hours.tolist(),
        "ratios": {k: v.tolist() for k, v in table.items()},
        "correlation": {f"{a}|{b}": v for (a, b), v in corr.items()},
        "mean": {k: s.mean for k, s in series.items()},
        "std": {k: s.std for k, s in series.items()},
    }
    return ExperimentResult("fig2", "Problem-session timeseries", text, data)


# ---------------------------------------------------------------------------
# Figures 7-8: prevalence and persistence
# ---------------------------------------------------------------------------
def run_fig7(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 7: distribution of problem-cluster prevalence."""
    grid = np.logspace(-3, 0, 16)
    series = {}
    data = {"grid": grid.tolist(), "curves": {}, "stats": {}}
    for name in METRIC_ORDER:
        values = prevalence_values(ctx.analysis[name].problem_timelines())
        curve = _inverse_cdf(values, grid)
        series[name] = curve
        data["curves"][name] = curve.tolist()
        data["stats"][name] = {
            "n_clusters": int(values.size),
            "frac_prevalence_ge_10pct": float((values >= 0.10).mean())
            if values.size
            else 0.0,
        }
    text = render_series(
        grid, series, x_label="prevalence",
        title="Figure 7 — fraction of problem clusters with prevalence >= x",
    )
    text += "\n\n" + render_kv(
        {
            f"{m}: frac clusters with prevalence>=10%": data["stats"][m][
                "frac_prevalence_ge_10pct"
            ]
            for m in METRIC_ORDER
        },
        title="Paper: ~8-12% of problem clusters appear >10% of the time",
    )
    return ExperimentResult("fig7", "Problem-cluster prevalence", text, data)


def run_fig8(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 8: inverse CDFs of median and max persistence."""
    grid = np.unique(
        np.round(np.logspace(0, np.log10(max(ctx.n_epochs, 2)), 12))
    )
    blocks = []
    data = {"grid": grid.tolist(), "median": {}, "max": {}, "stats": {}}
    for which, extractor in (
        ("median", median_persistence_values),
        ("max", max_persistence_values),
    ):
        series = {}
        for name in METRIC_ORDER:
            values = extractor(ctx.analysis[name].problem_timelines())
            series[name] = _inverse_cdf(values, grid)
            data[which][name] = series[name].tolist()
            if which == "median":
                data["stats"][name] = {
                    "frac_median_ge_2h": float((values >= 2).mean())
                    if values.size
                    else 0.0
                }
            else:
                data["stats"][name]["frac_max_ge_24h"] = (
                    float((values >= 24).mean()) if values.size else 0.0
                )
        blocks.append(
            render_series(
                grid, series, x_label="hours",
                title=f"Figure 8({'a' if which == 'median' else 'b'}) — "
                f"fraction of problem clusters with {which} persistence >= x",
            )
        )
    summary = {}
    for name in METRIC_ORDER:
        summary[f"{name}: frac median>=2h"] = data["stats"][name]["frac_median_ge_2h"]
        summary[f"{name}: frac max>=24h"] = data["stats"][name]["frac_max_ge_24h"]
    blocks.append(render_kv(
        summary,
        title="Paper: >20% of clusters median >=2h; ~1% peak >= 1 day",
    ))
    return ExperimentResult(
        "fig8", "Problem-cluster persistence", "\n\n".join(blocks), data
    )


# ---------------------------------------------------------------------------
# Figure 9 / Table 1: problem vs critical clusters
# ---------------------------------------------------------------------------
def run_fig9(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 9: problem vs critical cluster counts (join time)."""
    series = cluster_count_timeseries(ctx.analysis["join_time"])
    text = render_series(
        series.hours,
        {
            "problem_clusters": series.problem_clusters,
            "critical_clusters": series.critical_clusters,
        },
        x_label="hour",
        title="Figure 9 — cluster counts per hour (join time)",
        max_rows=24,
        precision=1,
    )
    text += "\n\n" + render_kv(
        {"mean reduction factor (problem/critical)": series.mean_reduction_factor},
        title="Paper: critical clusters ~50x fewer",
    )
    data = {
        "hours": series.hours.tolist(),
        "problem_clusters": series.problem_clusters.tolist(),
        "critical_clusters": series.critical_clusters.tolist(),
        "reduction_factor": series.mean_reduction_factor,
    }
    return ExperimentResult("fig9", "Cluster count timeseries", text, data)


def run_table1(ctx: ExperimentContext) -> ExperimentResult:
    """Table 1: cluster counts and coverages per metric."""
    rows = coverage_table(ctx.analysis)
    order = {m: i for i, m in enumerate(METRIC_ORDER)}
    rows.sort(key=lambda r: order.get(r.metric, 99))
    text = render_table(
        [
            "Metric",
            "Mean problem clusters",
            "Mean critical clusters",
            "Critical/problem",
            "Problem cluster coverage",
            "Critical cluster coverage",
            "Coverage ratio",
        ],
        [
            [
                r.metric,
                r.mean_problem_clusters,
                r.mean_critical_clusters,
                r.critical_fraction,
                r.mean_problem_cluster_coverage,
                r.mean_critical_cluster_coverage,
                r.coverage_fraction,
            ]
            for r in rows
        ],
        title="Table 1 — reduction via critical clusters "
        "(paper: 2-3% of clusters cover 44-84% of problem sessions)",
    )
    data = {
        r.metric: {
            "mean_problem_clusters": r.mean_problem_clusters,
            "mean_critical_clusters": r.mean_critical_clusters,
            "critical_fraction": r.critical_fraction,
            "problem_cluster_coverage": r.mean_problem_cluster_coverage,
            "critical_cluster_coverage": r.mean_critical_cluster_coverage,
        }
        for r in rows
    }
    return ExperimentResult("tab1", "Critical-cluster coverage", text, data)


# ---------------------------------------------------------------------------
# Figure 10 / Tables 2-3: structure of critical clusters
# ---------------------------------------------------------------------------
def run_fig10(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 10: breakdown of critical-cluster types per metric."""
    blocks = []
    data = {}
    for name in METRIC_ORDER:
        sectors = critical_type_breakdown(ctx.analysis[name])
        data[name] = [
            {"signature": s.signature, "fraction": s.fraction} for s in sectors
        ]
        blocks.append(
            render_table(
                ["Signature", "Problem sessions", "Fraction"],
                [[s.signature, s.problem_sessions, s.fraction] for s in sectors],
                title=f"Figure 10 — critical-cluster type breakdown ({name})",
                precision=3,
            )
        )
    return ExperimentResult(
        "fig10", "Critical-cluster type breakdown", "\n\n".join(blocks), data
    )


def run_table2(ctx: ExperimentContext) -> ExperimentResult:
    """Table 2: Jaccard similarity of top-100 critical clusters."""
    overlaps = jaccard_table(ctx.analysis, k=100)
    rows = [[a, b, v] for (a, b), v in overlaps.items()]
    text = render_table(
        ["Metric A", "Metric B", "Jaccard(top-100)"],
        rows,
        title="Table 2 — cross-metric overlap of critical clusters "
        "(paper: 0.01-0.23)",
    )
    data = {f"{a}|{b}": v for (a, b), v in overlaps.items()}
    return ExperimentResult("tab2", "Cross-metric Jaccard overlap", text, data)


def run_table3(ctx: ExperimentContext) -> ExperimentResult:
    """Table 3: most prevalent critical clusters, with ground truth."""
    table = prevalent_critical_clusters(
        ctx.analysis, prevalence_threshold=0.6, catalog=ctx.trace.catalog
    )
    rows = []
    data = {}
    for metric in METRIC_ORDER:
        data[metric] = {}
        for attr in ("asn", "cdn", "site", "connection_type"):
            clusters = table.cell(metric, attr)
            data[metric][attr] = [
                {
                    "cluster": c.key.label(),
                    "prevalence": c.prevalence,
                    "tag": c.ground_truth_tag,
                }
                for c in clusters
            ]
            for c in clusters[:3]:
                rows.append(
                    [
                        metric,
                        attr,
                        c.key.label(),
                        c.prevalence,
                        c.ground_truth_tag or "(organic/noise)",
                    ]
                )
    text = render_table(
        ["Metric", "Attr type", "Cluster", "Prevalence", "Ground-truth tag"],
        rows,
        title="Table 3 — most prevalent (>60%) critical clusters vs planted causes",
    )
    return ExperimentResult("tab3", "Most prevalent critical clusters", text, data)


# ---------------------------------------------------------------------------
# Section 5: what-if analyses
# ---------------------------------------------------------------------------
def run_fig11(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 11: improvement from fixing top-k critical clusters."""
    blocks = []
    data = {}
    for ranking in ("prevalence", "persistence", "coverage"):
        series = {}
        fractions = None
        for name in METRIC_ORDER:
            curve = topk_improvement_curve(ctx.analysis[name], by=ranking)
            fractions = curve.fractions
            series[name] = curve.improvement
            data.setdefault(ranking, {})[name] = {
                "fractions": curve.fractions.tolist(),
                "improvement": curve.improvement.tolist(),
                "at_1pct": curve.at_fraction(0.01),
            }
        blocks.append(
            render_series(
                fractions, series, x_label="top fraction",
                title=f"Figure 11 — problem sessions alleviated, ranked by {ranking}",
                precision=4,
            )
        )
    at1 = {
        f"{m} @top1% (coverage)": data["coverage"][m]["at_1pct"]
        for m in METRIC_ORDER
    }
    blocks.append(render_kv(
        at1, title="Paper: top 1% by coverage alleviates 15-55% "
        "(join failure ~55-60%)",
    ))
    return ExperimentResult(
        "fig11", "Top-k improvement curves", "\n\n".join(blocks), data
    )


def run_fig12(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 12: attribute-restricted selection (join failure)."""
    curves = attribute_restricted_curves(ctx.analysis["join_failure"])
    fractions = next(iter(curves.values())).fractions
    series = {label: c.improvement for label, c in curves.items()}
    text = render_series(
        fractions, series, x_label="normalized fraction",
        title="Figure 12 — restricted critical-cluster selection (join failure)",
        precision=4,
    )
    data = {
        label: {
            "fractions": c.fractions.tolist(),
            "improvement": c.improvement.tolist(),
        }
        for label, c in curves.items()
    }
    return ExperimentResult("fig12", "Attribute-restricted selection", text, data)


def run_table4(ctx: ExperimentContext) -> ExperimentResult:
    """Table 4: proactive history-based fixing (intra/inter-week)."""
    n = ctx.n_epochs
    splits: dict[str, tuple[range, range]] = {}
    if n >= 168:
        splits["intra-week"] = (range(0, 96), range(96, 168))
    else:  # scaled split for smaller contexts
        cut = (n * 4) // 7
        splits["intra-week"] = (range(0, cut), range(cut, n))
    if n >= 336:
        splits["inter-week"] = (range(0, 168), range(168, 336))

    rows = []
    data = {}
    for split_name, (train_range, test_range) in splits.items():
        for metric in METRIC_ORDER:
            train, test = ctx.split(metric, train_range, test_range)
            result = proactive_simulation(
                train, test, top_fraction=0.01, min_clusters=5
            )
            rows.append(
                [
                    split_name,
                    metric,
                    result.improvement,
                    result.potential,
                    result.fraction_of_potential,
                ]
            )
            data.setdefault(split_name, {})[metric] = {
                "new": result.improvement,
                "potential": result.potential,
                "fraction_of_potential": result.fraction_of_potential,
            }
    text = render_table(
        ["Split", "Metric", "New (proactive)", "Potential (oracle)", "New/Potential"],
        rows,
        title="Table 4 — proactive alleviation "
        "(paper: proactive reaches 61-86% of the oracle)",
    )
    return ExperimentResult("tab4", "Proactive what-if", text, data)


def run_fig13(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 13: reactive-repair timeseries for join failure."""
    result = reactive_simulation(ctx.analysis["join_failure"], detection_delay_epochs=1)
    hours = ctx.analysis["join_failure"].grid.hours()
    text = render_series(
        hours,
        {
            "original": result.original_series,
            "after_reactive": result.after_series,
            "not_in_critical": result.unattributed_series,
        },
        x_label="hour",
        title="Figure 13 — problem sessions before/after reactive repair "
        "(join failure)",
        max_rows=24,
        precision=1,
    )
    text += "\n\n" + render_kv(
        {
            "improvement": result.improvement,
            "potential (zero delay)": result.potential,
        },
        title="Paper: reactive reduces join-failure problems ~50%",
    )
    data = {
        "hours": hours.tolist(),
        "original": result.original_series.tolist(),
        "after": result.after_series.tolist(),
        "unattributed": result.unattributed_series.tolist(),
        "improvement": result.improvement,
        "potential": result.potential,
    }
    return ExperimentResult("fig13", "Reactive repair timeseries", text, data)


def run_table5(ctx: ExperimentContext) -> ExperimentResult:
    """Table 5: mean reactive improvement across metrics."""
    rows = []
    data = {}
    for metric in METRIC_ORDER:
        result = reactive_simulation(ctx.analysis[metric], detection_delay_epochs=1)
        rows.append(
            [metric, result.improvement, result.potential, result.fraction_of_potential]
        )
        data[metric] = {
            "new": result.improvement,
            "potential": result.potential,
            "fraction_of_potential": result.fraction_of_potential,
        }
    text = render_table(
        ["Metric", "New (reactive)", "Potential (zero delay)", "New/Potential"],
        rows,
        title="Table 5 — reactive alleviation (paper: 70-95% of potential)",
    )
    return ExperimentResult("tab5", "Reactive what-if", text, data)


# ---------------------------------------------------------------------------
# Validation & ablations
# ---------------------------------------------------------------------------
def run_validation(ctx: ExperimentContext) -> ExperimentResult:
    """Ground-truth recovery scores (no paper counterpart; substrate
    validation made possible by the synthetic catalogue)."""
    reports = validate_all(ctx.analysis, ctx.trace.catalog, table=ctx.trace.table)
    rows = [
        [
            name,
            r.n_events,
            r.event_recall,
            r.detectable_event_recall,
            r.mean_detectable_epoch_recall,
            r.top_k_precision,
            r.top_k_relaxed_precision,
        ]
        for name, r in reports.items()
    ]
    text = render_table(
        [
            "Metric",
            "Planted events",
            "Event recall",
            "Detectable-event recall",
            "Detectable epoch recall",
            "Top-20 precision",
            "Top-20 relaxed precision",
        ],
        rows,
        title="Ground-truth validation of the critical-cluster detector",
    )
    data = {
        name: {
            "n_events": r.n_events,
            "event_recall": r.event_recall,
            "detectable_event_recall": r.detectable_event_recall,
            "mean_detectable_epoch_recall": r.mean_detectable_epoch_recall,
            "top_k_precision": r.top_k_precision,
            "top_k_relaxed_precision": r.top_k_relaxed_precision,
        }
        for name, r in reports.items()
    }
    return ExperimentResult("validation", "Ground-truth validation", text, data)


def run_ablation_thresholds(ctx: ExperimentContext) -> ExperimentResult:
    """Sensitivity of the structure to the 1.5x ratio multiplier and
    the metric thresholds (paper Section 2: choices are illustrative)."""
    sub_epochs = min(ctx.n_epochs, 48)
    rows_mask = ctx.trace.table.start_time < sub_epochs * 3600.0
    table = ctx.trace.table.select(np.nonzero(rows_mask)[0])
    rows = []
    data = {}
    variants = (
        ("baseline", AnalysisConfig()),
        ("ratio x1.25", AnalysisConfig(
            problem_config=ProblemClusterConfig(ratio_multiplier=1.25))),
        ("ratio x2.0", AnalysisConfig(
            problem_config=ProblemClusterConfig(ratio_multiplier=2.0))),
        ("thresholds x0.5", AnalysisConfig(
            thresholds=MetricThresholds().scaled(0.5))),
        ("thresholds x2.0", AnalysisConfig(
            thresholds=MetricThresholds().scaled(2.0))),
    )
    # One substrate build amortized across all five variants; outputs
    # are bit-identical to per-variant analyze_trace calls.
    analyses = analyze_sweep(table, [config for _, config in variants])
    for (label, config), analysis in zip(variants, analyses):
        for metric in ("buffering_ratio", "join_failure"):
            ma = analysis[metric]
            rows.append(
                [
                    label,
                    metric,
                    ma.mean_problem_clusters,
                    ma.mean_critical_clusters,
                    ma.mean_critical_cluster_coverage,
                ]
            )
            data.setdefault(label, {})[metric] = {
                "problem_clusters": ma.mean_problem_clusters,
                "critical_clusters": ma.mean_critical_clusters,
                "critical_coverage": ma.mean_critical_cluster_coverage,
            }
    text = render_table(
        ["Variant", "Metric", "Problem clusters", "Critical clusters",
         "Critical coverage"],
        rows,
        title="Ablation — threshold sensitivity "
        "(paper claims qualitative robustness)",
    )
    return ExperimentResult("abl-threshold", "Threshold sensitivity", text, data)


def run_ablation_hhh(ctx: ExperimentContext) -> ExperimentResult:
    """Critical clusters vs hierarchical heavy hitters on planted truth."""
    grid, per_epoch = split_into_epochs(ctx.trace.table, ctx.analysis.grid)
    planted = {e.cluster_key for e in ctx.trace.catalog}
    sample = range(0, min(grid.n_epochs, 48))
    rows = []
    data = {}
    for metric in ("join_failure", "buffering_ratio"):
        m = metric_by_name(metric)
        hhh_hits: set = set()
        critical_hits: set = set()
        n_hhh = 0
        n_critical = 0
        for epoch in sample:
            agg = aggregate_epoch(ctx.trace.table, per_epoch[epoch], m, epoch=epoch)
            hitters = find_hierarchical_heavy_hitters(agg, HHHConfig(phi=0.02))
            n_hhh += len(hitters)
            hhh_hits |= {h.key for h in hitters if h.key in planted}
            criticals = set(ctx.analysis[metric].epochs[epoch].critical_clusters)
            n_critical += len(criticals)
            critical_hits |= criticals & planted
        rows.append([metric, "critical", n_critical / len(sample),
                     len(critical_hits)])
        rows.append([metric, "hhh(phi=0.02)", n_hhh / len(sample), len(hhh_hits)])
        data[metric] = {
            "critical": {"mean_reported": n_critical / len(sample),
                         "planted_recovered": len(critical_hits)},
            "hhh": {"mean_reported": n_hhh / len(sample),
                    "planted_recovered": len(hhh_hits)},
        }
    text = render_table(
        ["Metric", "Detector", "Mean reported/epoch", "Distinct planted recovered"],
        rows,
        title="Ablation — critical clusters vs hierarchical heavy hitters",
    )
    return ExperimentResult("abl-hhh", "HHH baseline comparison", text, data)


def run_ablation_engines(ctx: ExperimentContext) -> ExperimentResult:
    """Statistical vs mechanistic QoE engine agreement on headline stats."""
    mech_spec = StandardWorkloads.mechanistic_tiny(seed=5)
    stat_spec = replace(mech_spec, name="stat_twin", engine="statistical")
    rows = []
    data = {}
    for label, spec in (("mechanistic", mech_spec), ("statistical", stat_spec)):
        trace = generate_trace(spec)
        stats = headline_statistics(trace.table)
        fail = float(trace.table.join_failed.mean())
        rows.append(
            [
                label,
                fail,
                stats["frac_buffering_ratio_gt_5pct"],
                stats["frac_join_time_gt_10s"],
                stats["frac_bitrate_lt_700kbps"],
            ]
        )
        data[label] = {"join_failure_rate": fail, **stats}
    text = render_table(
        ["Engine", "Join failure rate", "BufRatio>5%", "JoinTime>10s",
         "Bitrate<700kbps"],
        rows,
        title="Ablation — statistical vs chunk-level mechanistic engine",
    )
    return ExperimentResult("abl-engine", "Engine agreement", text, data)


def run_ablation_epoch_length(ctx: ExperimentContext) -> ExperimentResult:
    """Sensitivity to the epoching granularity.

    The paper fixes one-hour epochs because that is its dataset's
    finest granularity (Section 3.1, footnote 2). The synthetic trace
    carries continuous timestamps, so the analysis can re-run at 30
    minutes and 2 hours: coarser epochs pool more sessions (more
    clusters pass the significance floor, streaks shorten in epoch
    units), finer epochs fragment them.
    """
    sub_hours = min(ctx.n_epochs, 48)
    table = ctx.trace.table.select(
        np.nonzero(ctx.trace.table.start_time < sub_hours * 3600.0)[0]
    )
    rows = []
    data = {}
    lengths = (("30 min", 1800.0), ("1 h (paper)", 3600.0), ("2 h", 7200.0))
    # The sweep groups configs by epoch grid, so the pack/index build is
    # still shared across all three granularities.
    analyses = analyze_sweep(
        table,
        [AnalysisConfig(epoch_seconds=seconds) for _, seconds in lengths],
    )
    for (label, seconds), analysis in zip(lengths, analyses):
        ma = analysis["join_failure"]
        timelines = ma.problem_timelines()
        medians = median_persistence_values(timelines)
        rows.append([
            label,
            analysis.grid.n_epochs,
            ma.mean_problem_clusters,
            ma.mean_critical_clusters,
            ma.mean_critical_cluster_coverage,
            float(np.median(medians)) if medians.size else 0.0,
        ])
        data[label] = {
            "n_epochs": analysis.grid.n_epochs,
            "problem_clusters": ma.mean_problem_clusters,
            "critical_clusters": ma.mean_critical_clusters,
            "critical_coverage": ma.mean_critical_cluster_coverage,
        }
    text = render_table(
        ["Epoch length", "Epochs", "Problem clusters", "Critical clusters",
         "Critical coverage", "Median streak (epochs)"],
        rows,
        title="Ablation — epoching granularity (join failure, first "
        f"{sub_hours} h)",
    )
    return ExperimentResult(
        "abl-epoch", "Epoch-length sensitivity", text, data
    )


def run_ablation_scale(ctx: ExperimentContext) -> ExperimentResult:
    """Pipeline throughput vs per-epoch session volume."""
    import time

    rows = []
    data = {}
    for per_epoch in (500, 2000, 8000):
        spec = StandardWorkloads.tiny(seed=9)
        spec = replace(
            spec,
            name=f"scale_{per_epoch}",
            n_epochs=6,
            arrivals=replace(spec.arrivals, base_sessions_per_epoch=per_epoch),
        )
        trace = generate_trace(spec)
        start = time.perf_counter()
        analyze_trace(trace.table, grid=trace.grid)
        elapsed = time.perf_counter() - start
        throughput = trace.n_sessions / elapsed
        rows.append([per_epoch, trace.n_sessions, elapsed, throughput])
        data[per_epoch] = {
            "sessions": trace.n_sessions,
            "seconds": elapsed,
            "sessions_per_second": throughput,
        }
    text = render_table(
        ["Sessions/epoch", "Total sessions", "Analysis seconds",
         "Sessions/second"],
        rows,
        title="Ablation — analysis throughput vs trace volume",
    )
    return ExperimentResult("abl-scale", "Scale ablation", text, data)


def run_ablation_parallel(ctx: ExperimentContext) -> ExperimentResult:
    """Engine ablation: legacy serial vs epoch-parallel vs trace-indexed.

    Re-analyzes a slice of the context's trace three ways — the legacy
    per-epoch engine serially (``workers=0, engine="epoch"``), the same
    engine fanned over a process pool (``workers="auto"``), and the
    trace-global indexed engine serially (``engine="indexed"``) — and
    reports wall time, sessions/second and the per-phase counters the
    instrumented pipeline collects. Results of all runs are verified
    identical before reporting.
    """
    import os
    import time

    sub_hours = min(ctx.n_epochs, 24)
    table = ctx.trace.table.select(
        np.nonzero(ctx.trace.table.start_time < sub_hours * 3600.0)[0]
    )
    n_cpus = os.cpu_count() or 1
    rows = []
    data: dict = {"cpus": n_cpus, "sessions": len(table)}
    analyses = {}
    variants = (
        ("serial", 0, "epoch"),
        (f"parallel(auto={n_cpus})", "auto", "epoch"),
        ("indexed", 0, "indexed"),
    )
    for label, workers, engine in variants:
        start = time.perf_counter()
        analysis = analyze_trace(table, workers=workers, engine=engine)
        elapsed = time.perf_counter() - start
        analyses[label] = analysis
        t = analysis.timings
        rows.append([
            label, elapsed, len(table) / elapsed,
            t.pack_s + t.index_build_s, t.aggregate_s, t.problems_s,
            t.critical_s,
        ])
        data[label] = {
            "seconds": elapsed,
            "sessions_per_second": len(table) / elapsed,
            **t.as_dict(),
        }
    serial = analyses["serial"]
    identical = all(
        serial[name].epochs == other[name].epochs
        for label, other in analyses.items()
        if label != "serial"
        for name in serial.metric_names
    )
    parallel_speedup = (
        data["serial"]["seconds"] / data[f"parallel(auto={n_cpus})"]["seconds"]
    )
    indexed_speedup = data["serial"]["seconds"] / data["indexed"]["seconds"]
    data["speedup"] = parallel_speedup
    data["indexed_speedup"] = indexed_speedup
    data["identical_results"] = identical
    parallel_note = (
        f"{parallel_speedup:.2f}x"
        if n_cpus > 1
        else f"{parallel_speedup:.2f}x (1 CPU: overhead only, not a speedup)"
    )
    text = render_table(
        ["Engine", "Seconds", "Sessions/s", "Pack/index s", "Aggregate s",
         "Problems s", "Critical s"],
        rows,
        title=f"Ablation — pipeline engines ({n_cpus} CPUs, "
        f"first {sub_hours} h)",
    )
    text += "\n\n" + render_kv(
        {"speedup (serial/parallel)": parallel_note,
         "speedup (serial/indexed)": f"{indexed_speedup:.2f}x",
         "results identical": str(identical)},
        title="Engine ablation (identical output is a hard invariant)",
    )
    return ExperimentResult("abl-parallel", "Pipeline engine ablation", text, data)
