"""Bench: core pipeline components (not a paper artifact).

Times the three core stages on one representative epoch of the week
trace — per-epoch aggregation, problem-cluster detection, and the
critical-cluster phase-transition search — plus a full single-metric
day of pipeline. These are the costs that dominate every experiment.
"""

import numpy as np
import pytest

from repro.core.aggregation import aggregate_epoch
from repro.core.critical import find_critical_clusters
from repro.core.epoching import split_into_epochs
from repro.core.metrics import JOIN_FAILURE
from repro.core.pipeline import AnalysisConfig, analyze_trace
from repro.core.problems import find_problem_clusters


@pytest.fixture(scope="module")
def epoch_inputs(week_context):
    table = week_context.trace.table
    grid, per_epoch = split_into_epochs(table, week_context.analysis.grid)
    rows = max(per_epoch, key=len)  # busiest epoch
    return table, rows


def bench_epoch_aggregation(benchmark, epoch_inputs):
    table, rows = epoch_inputs
    agg = benchmark(aggregate_epoch, table, rows, JOIN_FAILURE)
    assert agg.total_sessions == len(rows)


def bench_problem_cluster_detection(benchmark, epoch_inputs):
    table, rows = epoch_inputs
    agg = aggregate_epoch(table, rows, JOIN_FAILURE)
    problems = benchmark(find_problem_clusters, agg)
    assert problems.n_clusters >= 0


def bench_critical_cluster_search(benchmark, epoch_inputs):
    table, rows = epoch_inputs
    agg = aggregate_epoch(table, rows, JOIN_FAILURE)
    problems = find_problem_clusters(agg)
    critical = benchmark(find_critical_clusters, problems)
    assert critical.coverage <= problems.coverage + 1e-9


def bench_full_pipeline_one_day(benchmark, week_context):
    table = week_context.trace.table
    day = table.select(np.nonzero(table.start_time < 24 * 3600.0)[0])
    config = AnalysisConfig(metrics=(JOIN_FAILURE,))
    analysis = benchmark.pedantic(
        analyze_trace, args=(day,), kwargs={"config": config},
        rounds=1, iterations=1,
    )
    assert analysis.grid.n_epochs == 24
