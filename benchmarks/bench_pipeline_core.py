"""Bench: core pipeline components (not a paper artifact).

Times the three core stages on one representative epoch of the week
trace — per-epoch aggregation, problem-cluster detection, and the
critical-cluster phase-transition search — plus a full single-metric
day of pipeline. These are the costs that dominate every experiment.

``bench_pipeline_engine_json`` additionally records an end-to-end
serial-vs-parallel comparison (sessions/sec, speedup, per-phase
timings) to ``benchmarks/results/BENCH_pipeline.json`` so future
changes have a perf trajectory to compare against.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.aggregation import EpochLeafIndex, KeyCodec, aggregate_epoch
from repro.core.critical import find_critical_clusters
from repro.core.epoching import split_into_epochs
from repro.core.metrics import ALL_METRICS, JOIN_FAILURE
from repro.core.pipeline import AnalysisConfig, analyze_trace
from repro.core.problems import find_problem_clusters


@pytest.fixture(scope="module")
def epoch_inputs(week_context):
    table = week_context.trace.table
    grid, per_epoch = split_into_epochs(table, week_context.analysis.grid)
    rows = max(per_epoch, key=len)  # busiest epoch
    return table, rows


def bench_epoch_aggregation(benchmark, epoch_inputs):
    table, rows = epoch_inputs
    agg = benchmark(aggregate_epoch, table, rows, JOIN_FAILURE)
    assert agg.total_sessions == len(rows)


def bench_problem_cluster_detection(benchmark, epoch_inputs):
    table, rows = epoch_inputs
    agg = aggregate_epoch(table, rows, JOIN_FAILURE)
    problems = benchmark(find_problem_clusters, agg)
    assert problems.n_clusters >= 0


def bench_critical_cluster_search(benchmark, epoch_inputs):
    table, rows = epoch_inputs
    agg = aggregate_epoch(table, rows, JOIN_FAILURE)
    problems = find_problem_clusters(agg)
    critical = benchmark(find_critical_clusters, problems)
    assert critical.coverage <= problems.coverage + 1e-9


def bench_full_pipeline_one_day(benchmark, week_context):
    table = week_context.trace.table
    day = table.select(np.nonzero(table.start_time < 24 * 3600.0)[0])
    config = AnalysisConfig(metrics=(JOIN_FAILURE,))
    analysis = benchmark.pedantic(
        analyze_trace, args=(day,), kwargs={"config": config},
        rounds=1, iterations=1,
    )
    assert analysis.grid.n_epochs == 24


def bench_shared_leaf_index(benchmark, epoch_inputs):
    """Shared pack/unique once + four metric restrictions (the new path)."""
    table, rows = epoch_inputs
    codec = KeyCodec.from_table(table)

    def shared():
        index = EpochLeafIndex.build(table, rows, codec=codec)
        return [
            aggregate_epoch(table, rows, metric, leaf_index=index)
            for metric in ALL_METRICS
        ]

    aggs = benchmark(shared)
    assert len(aggs) == len(ALL_METRICS)


def bench_per_metric_packing(benchmark, epoch_inputs):
    """Per-metric pack/unique (the old path), for direct comparison."""
    table, rows = epoch_inputs
    codec = KeyCodec.from_table(table)

    def per_metric():
        return [
            aggregate_epoch(table, rows, metric, codec=codec)
            for metric in ALL_METRICS
        ]

    aggs = benchmark(per_metric)
    assert len(aggs) == len(ALL_METRICS)


def bench_pipeline_engine_json(week_context, results_dir):
    """End-to-end serial vs parallel run, recorded to BENCH_pipeline.json.

    Not a microbench: one timed serial pass and one timed parallel pass
    (``workers="auto"``) over a day of the week trace, all four
    metrics, with the per-phase counters the instrumented pipeline
    collects. Asserts the two engines return identical results.
    """
    table = week_context.trace.table
    day = table.select(np.nonzero(table.start_time < 24 * 3600.0)[0])
    n_cpus = os.cpu_count() or 1

    start = time.perf_counter()
    serial = analyze_trace(day, workers=0)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = analyze_trace(day, workers="auto")
    parallel_s = time.perf_counter() - start

    for name in serial.metric_names:
        assert serial[name].epochs == parallel[name].epochs, name

    payload = {
        "workload": "week (first 24 h)",
        "sessions": len(day),
        "epochs": serial.grid.n_epochs,
        "metrics": len(serial.metric_names),
        "cpus": n_cpus,
        "serial_seconds": serial_s,
        "serial_sessions_per_sec": len(day) / serial_s,
        "parallel_workers": n_cpus,
        "parallel_seconds": parallel_s,
        "parallel_sessions_per_sec": len(day) / parallel_s,
        "speedup": serial_s / parallel_s,
        "serial_phases": serial.timings.as_dict(),
        "parallel_phases": parallel.timings.as_dict(),
    }
    path = results_dir / "BENCH_pipeline.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {path}: "
          f"{payload['serial_sessions_per_sec']:.0f} sess/s serial, "
          f"{payload['parallel_sessions_per_sec']:.0f} sess/s parallel "
          f"({payload['speedup']:.2f}x on {n_cpus} CPUs)")
