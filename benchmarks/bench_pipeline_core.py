"""Bench: core pipeline components (not a paper artifact).

Times the three core stages on one representative epoch of the week
trace — per-epoch aggregation, problem-cluster detection, and the
critical-cluster phase-transition search — plus a full single-metric
day of pipeline. These are the costs that dominate every experiment.

``bench_pipeline_engine_json`` additionally records an end-to-end
comparison of the three engines — legacy serial, legacy epoch-parallel,
and trace-indexed serial — (sessions/sec, speedups, per-phase timings)
to ``benchmarks/results/BENCH_pipeline.json`` so future changes have a
perf trajectory to compare against.
"""

import dataclasses
import json
import math
import os
import pickle
import time

import numpy as np
import pytest

from repro.core.aggregation import EpochLeafIndex, KeyCodec, aggregate_epoch
from repro.core.critical import find_critical_clusters
from repro.core.epoching import split_into_epochs
from repro.core.index import TraceClusterIndex
from repro.core.metrics import ALL_METRICS, JOIN_FAILURE, MetricThresholds
from repro.core.pipeline import AnalysisConfig, analyze_trace
from repro.core.problems import find_problem_clusters
from repro.core.sessions import SessionTable
from repro.core.shm import (
    make_worker_payload,
    payload_pickled_bytes,
    shared_memory_available,
)
from repro.core.substrate import AnalysisSubstrate, StreamingSubstrate, analyze_sweep
from repro.io.snapshot import load_substrate, save_substrate
from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer


@pytest.fixture(scope="module")
def epoch_inputs(week_context):
    table = week_context.trace.table
    grid, per_epoch = split_into_epochs(table, week_context.analysis.grid)
    rows = max(per_epoch, key=len)  # busiest epoch
    return table, rows


def bench_epoch_aggregation(benchmark, epoch_inputs):
    table, rows = epoch_inputs
    agg = benchmark(aggregate_epoch, table, rows, JOIN_FAILURE)
    assert agg.total_sessions == len(rows)


def bench_problem_cluster_detection(benchmark, epoch_inputs):
    table, rows = epoch_inputs
    agg = aggregate_epoch(table, rows, JOIN_FAILURE)
    problems = benchmark(find_problem_clusters, agg)
    assert problems.n_clusters >= 0


def bench_critical_cluster_search(benchmark, epoch_inputs):
    table, rows = epoch_inputs
    agg = aggregate_epoch(table, rows, JOIN_FAILURE)
    problems = find_problem_clusters(agg)
    critical = benchmark(find_critical_clusters, problems)
    assert critical.coverage <= problems.coverage + 1e-9


def bench_full_pipeline_one_day(benchmark, week_context):
    table = week_context.trace.table
    day = table.select(np.nonzero(table.start_time < 24 * 3600.0)[0])
    config = AnalysisConfig(metrics=(JOIN_FAILURE,))
    analysis = benchmark.pedantic(
        analyze_trace, args=(day,), kwargs={"config": config},
        rounds=1, iterations=1,
    )
    assert analysis.grid.n_epochs == 24


def bench_shared_leaf_index(benchmark, epoch_inputs):
    """Shared pack/unique once + four metric restrictions (the new path)."""
    table, rows = epoch_inputs
    codec = KeyCodec.from_table(table)

    def shared():
        index = EpochLeafIndex.build(table, rows, codec=codec)
        return [
            aggregate_epoch(table, rows, metric, leaf_index=index)
            for metric in ALL_METRICS
        ]

    aggs = benchmark(shared)
    assert len(aggs) == len(ALL_METRICS)


def bench_indexed_epoch_view(benchmark, epoch_inputs):
    """Epoch view + four metric aggregations through a prebuilt
    trace-global index (the indexed engine's steady-state per-epoch
    cost, directly comparable to ``bench_shared_leaf_index``)."""
    table, rows = epoch_inputs
    index = TraceClusterIndex.build(table)
    index.warm_metric_masks(ALL_METRICS)

    def indexed():
        view = index.epoch_view(rows)
        return [view.aggregate(metric) for metric in ALL_METRICS]

    aggs = benchmark(indexed)
    assert len(aggs) == len(ALL_METRICS)


def bench_per_metric_packing(benchmark, epoch_inputs):
    """Per-metric pack/unique (the old path), for direct comparison."""
    table, rows = epoch_inputs
    codec = KeyCodec.from_table(table)

    def per_metric():
        return [
            aggregate_epoch(table, rows, metric, codec=codec)
            for metric in ALL_METRICS
        ]

    aggs = benchmark(per_metric)
    assert len(aggs) == len(ALL_METRICS)


def bench_pipeline_engine_json(week_context, results_dir):
    """End-to-end engine comparison, recorded to BENCH_pipeline.json.

    Not a microbench: one timed pass per engine configuration — legacy
    serial (``engine="epoch", workers=0``), legacy parallel
    (``workers="auto"``), and trace-indexed serial
    (``engine="indexed"``) — over a day of the week trace, all four
    metrics, with the per-phase counters the instrumented pipeline
    collects. Asserts all configurations return identical results.

    Two further sections record the substrate work:

    * ``sweep`` — a 5-config threshold sweep over the same day, timed
      as five independent ``analyze_trace`` calls vs one
      ``analyze_sweep`` (same configs, bit-identical outputs asserted).
      The sweep builds the packed table / cluster index / epoch views
      once instead of five times, so its speedup is CPU-count
      independent.
    * ``worker_transport`` — what one worker's hand-off costs under
      each transport: pickled payload bytes and creation/attach times
      for the pickle path vs the shared-memory path.
    * ``observability`` — instrumentation overhead of a live span
      tracer + metrics registry vs the no-op default: a paired
      end-to-end comparison (informational) plus a deterministic
      per-op bound (ops per run x measured per-op cost) gated below
      2 % on the week workload.
    * ``streaming`` — the online-detection cost model: per-epoch
      append+detect through one incrementally maintained
      ``StreamingSubstrate`` vs rebuilding the cluster index from
      scratch every epoch (identical per-epoch problem clusters
      asserted), and mmap-loading a substrate snapshot vs a cold
      pack+index build.
    * ``sharding`` — the out-of-core engine: monolithic
      ``analyze_trace`` vs ``analyze_shards`` over a day-per-shard
      store, each measured in its own **subprocess** (``ru_maxrss`` is
      a lifetime high-water mark, so peaks are only comparable across
      process boundaries). Records parent peak RSS, wall and analyze
      times, and asserts identical result fingerprints. The
      peak-memory gate (sharded parent <= 0.5x monolithic) runs on the
      week workload; the wall-clock gate (shard-parallel >= 1.3x
      faster than single-process indexed) additionally needs >= 4
      CPUs, and the payload says which gates were enforced.

    * ``mechanistic`` — the vectorized batch simulation engine: scalar
      vs batch wall time generating the ``mechanistic_day`` trace
      (``mechanistic_tiny`` on the smoke run), sessions/sec for each,
      bit-identity asserted at every workload, and the >= 10x batch
      speedup gated on the day workload (the tiny batch is
      setup-dominated, so its ratio is not the claim under test).

    * ``result_cache`` — the memoized per-shard path: cold vs warm
      re-analysis of the same store (warm is pure load+merge; gated
      >= 5x on the week workload) and an append-one-period rebuild via
      ``ShardStoreBuilder`` whose ``cache.miss`` count must equal the
      number of genuinely new shards (asserted at every workload —
      content-addressed invalidation is a correctness property).

    * ``profiling`` — the SIGPROF statistical sampler at 97 Hz over
      the indexed day run: overhead via the deterministic
      samples x handler-cost bound (gated < 3 % on the week workload),
      the collapsed-stack flamegraph written to
      ``BENCH_profile.flame.txt``, and the hottest sampled stack
      asserted to be a real pipeline span.

    Finally the payload is ingested into a ``RunJournal`` under
    ``results/BENCH_journal`` and every gate above is re-evaluated
    **from the journal record alone** (``repro.obs.gate``); the run
    fails if the journal verdicts disagree with the inline asserts.

    The parallel comparison is only meaningful with more than one CPU;
    on a 1-CPU box the recorded "speedup" measures pure process-pool
    overhead, and the payload says so (``parallel_comparison_note``).
    The indexed-engine speedups are CPU-count independent.
    """
    workload = os.environ.get("REPRO_BENCH_WORKLOAD", "week")
    table = week_context.trace.table
    day = table.select(np.nonzero(table.start_time < 24 * 3600.0)[0])
    n_cpus = os.cpu_count() or 1

    start = time.perf_counter()
    serial = analyze_trace(day, workers=0, engine="epoch")
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = analyze_trace(day, workers="auto", engine="epoch")
    parallel_s = time.perf_counter() - start

    start = time.perf_counter()
    indexed = analyze_trace(day, workers=0, engine="indexed")
    indexed_s = time.perf_counter() - start

    for name in serial.metric_names:
        assert serial[name].epochs == parallel[name].epochs, name
        assert serial[name].epochs == indexed[name].epochs, name

    st, it = serial.timings, indexed.timings

    def phase_ratio(legacy_s: float, indexed_phase_s: float) -> float:
        return legacy_s / indexed_phase_s if indexed_phase_s > 0 else float("inf")

    # --- sweep amortization: N configs through one substrate ----------
    scales = (0.25, 0.5, 1.0, 2.0, 4.0)
    configs = [
        dataclasses.replace(
            AnalysisConfig(), thresholds=MetricThresholds().scaled(s)
        )
        for s in scales
    ]
    # Two timed repetitions per side, keeping the faster: on a busy
    # 1-CPU box a single run absorbs scheduler noise of the same order
    # as the gap being measured.
    independent_s = math.inf
    for _ in range(2):
        start = time.perf_counter()
        independent = [analyze_trace(day, config=config) for config in configs]
        independent_s = min(independent_s, time.perf_counter() - start)

    sweep_s = math.inf
    for _ in range(2):
        start = time.perf_counter()
        swept = analyze_sweep(day, configs)
        sweep_s = min(sweep_s, time.perf_counter() - start)

    for scale, ref, got in zip(scales, independent, swept):
        for name in ref.metric_names:
            assert ref[name].epochs == got[name].epochs, (scale, name)
    sweep_speedup = independent_s / sweep_s
    if workload == "week":  # the acceptance workload; tiny smoke only records
        assert sweep_speedup >= 2.0, sweep_speedup

    # --- worker hand-off: what each transport ships and costs ---------
    shm_ok = shared_memory_available()
    transport_index = TraceClusterIndex.build(day)
    transport_index.warm_metric_masks(ALL_METRICS)

    start = time.perf_counter()
    pickle_payload = make_worker_payload(day, transport_index, transport="pickle")
    pickle_create_s = time.perf_counter() - start
    pickle_bytes = payload_pickled_bytes(pickle_payload)

    worker_transport = {
        "shm_available": shm_ok,
        "pickle_payload_bytes": pickle_bytes,
        "pickle_create_seconds": pickle_create_s,
    }
    if shm_ok:
        start = time.perf_counter()
        shm_payload = make_worker_payload(day, transport_index, transport="shm")
        shm_create_s = time.perf_counter() - start
        shm_bytes = payload_pickled_bytes(shm_payload)
        worker_clone = pickle.loads(
            pickle.dumps(shm_payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        start = time.perf_counter()
        worker_clone.restore()
        shm_attach_s = time.perf_counter() - start
        worker_clone.release()
        segment_bytes = shm_payload.manifest.nbytes
        shm_payload.release()
        worker_transport.update(
            {
                "shm_payload_bytes": shm_bytes,
                "shm_segment_bytes": segment_bytes,
                "payload_bytes_ratio": pickle_bytes / shm_bytes,
                "shm_create_seconds": shm_create_s,
                "shm_attach_seconds": shm_attach_s,
            }
        )

    # --- observability: live tracer+metrics vs the no-op default ------
    # Two views of the same question. (a) An interleaved paired
    # end-to-end comparison (min over pairs), recorded for the trend
    # line but NOT gated: scheduler noise on a shared box runs several
    # percent either way, far above the true cost. (b) The gated bound:
    # the pipeline emits a constant number of spans and counter bumps
    # per run (no per-session or per-row instrumentation), so its cost
    # is ops-per-run times the measured per-op cost — deterministic and
    # orders of magnitude below the 2 % budget.
    class _CountingMetrics(MetricsRegistry):
        inc_calls = 0

        def inc(self, name, value=1):
            self.inc_calls += 1
            super().inc(name, value)

    plain_s = math.inf
    traced_s = math.inf
    traced_spans = 0
    metric_ops = 0
    for _ in range(3):
        start = time.perf_counter()
        analyze_trace(day, workers=0, engine="indexed")
        plain_s = min(plain_s, time.perf_counter() - start)

        tracer = Tracer(name="bench")
        counting = _CountingMetrics()
        with use_tracer(tracer), use_metrics(counting):
            start = time.perf_counter()
            analyze_trace(day, workers=0, engine="indexed")
            traced_s = min(traced_s, time.perf_counter() - start)
        tracer.finish()
        traced_spans = sum(1 for _ in tracer.root.walk())
        metric_ops = counting.inc_calls

    probe = Tracer(name="probe")
    reps = 10_000
    with use_tracer(probe), use_metrics(MetricsRegistry()):
        start = time.perf_counter()
        for _ in range(reps):
            with probe.span("probe.op", k=1):
                pass
        span_cost_s = (time.perf_counter() - start) / reps
        registry = MetricsRegistry()
        start = time.perf_counter()
        for _ in range(reps):
            registry.inc("probe.counter")
        inc_cost_s = (time.perf_counter() - start) / reps
    probe.finish()

    instrumentation_s = traced_spans * span_cost_s + metric_ops * inc_cost_s
    obs_overhead_pct = 100.0 * instrumentation_s / plain_s
    if workload == "week":
        assert obs_overhead_pct < 2.0, (
            instrumentation_s,
            plain_s,
            traced_spans,
            metric_ops,
        )

    # --- streaming: amortized append+detect vs per-epoch rebuild ------
    # Full trace, not just the first day: the rebuild strawman's cost
    # grows with the prefix length, which is exactly the effect the
    # incremental index removes for a long-running online detector.
    _, per_epoch_rows = split_into_epochs(table, week_context.analysis.grid)
    epoch_chunks = [table.select(rows) for rows in per_epoch_rows]
    thresholds = MetricThresholds()

    def detect(view):
        agg = view.aggregate(JOIN_FAILURE, thresholds=thresholds)
        problems = find_problem_clusters(agg)
        find_critical_clusters(problems)
        return {m: rows.tolist() for m, rows in problems.problem_rows.items()}

    stream = StreamingSubstrate(
        schema=table.schema,
        epoch_seconds=week_context.analysis.grid.epoch_seconds,
    )
    stream.index.warm_metric_masks((JOIN_FAILURE,), thresholds)
    start = time.perf_counter()
    streamed_problems = []
    for epoch, chunk in enumerate(epoch_chunks):
        new_rows = stream.append(chunk)
        streamed_problems.append(
            detect(stream.epoch_view(new_rows, epoch=epoch))
        )
    streaming_s = time.perf_counter() - start

    prefix = SessionTable.empty(table.schema)
    start = time.perf_counter()
    rebuilt_problems = []
    for epoch, chunk in enumerate(epoch_chunks):
        new_rows = prefix.extend(chunk)
        rebuilt = TraceClusterIndex.build(prefix)
        rebuilt_problems.append(
            detect(rebuilt.epoch_view(new_rows, epoch=epoch))
        )
    rebuild_s = time.perf_counter() - start

    for epoch, (a, b) in enumerate(zip(streamed_problems, rebuilt_problems)):
        assert a == b, epoch
    append_detect_speedup = rebuild_s / streaming_s
    if workload == "week":
        # The ratio is hardware-sensitive: the rebuild strawman is
        # dominated by pack/unique throughput, which varies ~2x across
        # boxes (5.5x recorded on the original box, ~2.7-2.9x on a
        # slower-memory one). The floor pins the amortization win
        # itself, not a particular machine's constant.
        assert append_detect_speedup >= 2.0, append_detect_speedup

    # --- streaming: snapshot load vs cold pack+index build ------------
    cold_build_s = math.inf
    for _ in range(2):
        start = time.perf_counter()
        substrate = AnalysisSubstrate.build(table)
        cold_build_s = min(cold_build_s, time.perf_counter() - start)
    snapshot_path = results_dir / "BENCH_substrate.sub.tmp"
    try:
        save_substrate(substrate, snapshot_path)
        snapshot_bytes = snapshot_path.stat().st_size
        load_s = math.inf
        for _ in range(3):
            start = time.perf_counter()
            loaded = load_substrate(snapshot_path)
            load_s = min(load_s, time.perf_counter() - start)
        assert len(loaded.table) == len(table)
    finally:
        snapshot_path.unlink(missing_ok=True)
    snapshot_speedup = cold_build_s / load_s
    if workload == "week":
        assert snapshot_speedup >= 5.0, snapshot_speedup

    # --- sharding: out-of-core map/merge vs monolithic ----------------
    # Each side runs in its own subprocess: ru_maxrss is a lifetime
    # high-water mark, so in-process before/after comparisons would be
    # meaningless. The shard child always uses a >= 2 worker pool —
    # worker *processes*, not CPUs, are what keep shard tables out of
    # the parent — so the bounded-parent-memory claim is measurable
    # even on a 1-CPU box; only the wall-clock gate needs real cores.
    import subprocess
    import sys

    from repro.core.shards import build_shard_store
    from repro.io.binary import write_sessions_npz

    child_script = """
import hashlib, json, sys, time
mode, path, workers = sys.argv[1], sys.argv[2], int(sys.argv[3])
start = time.perf_counter()
if mode == "mono":
    from repro.core.pipeline import analyze_trace
    from repro.io.binary import read_sessions_npz
    table = read_sessions_npz(path)
    t0 = time.perf_counter()
    analysis = analyze_trace(table, workers=0, engine="indexed")
else:
    from repro.core.shards import ShardStore, analyze_shards
    store = ShardStore.open(path)
    t0 = time.perf_counter()
    analysis = analyze_shards(store, workers=workers)
analyze_s = time.perf_counter() - t0
# getrusage's ru_maxrss survives fork+exec on Linux, so a child of a
# fat bench process would report its parent's peak; VmHWM is reset at
# exec and measures only this process.
def peak_rss_bytes():
    try:
        with open("/proc/self/status") as f:
            for line in f:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    from repro.obs import peak_rss_bytes as fallback
    return fallback()
h = hashlib.sha256()
for name in analysis.metric_names:
    ma = analysis[name]
    h.update(ma.problem_ratio_series.tobytes())
    for e in ma.epochs:
        h.update(repr((e.epoch,
                       sorted(k.label() for k in e.problem_clusters),
                       sorted(k.label() for k in e.critical_clusters),
                       e.total_sessions)).encode())
print(json.dumps({
    "wall_seconds": time.perf_counter() - start,
    "analyze_seconds": analyze_s,
    "peak_rss_bytes": peak_rss_bytes(),
    "fingerprint": h.hexdigest(),
}))
"""

    def run_child(mode: str, path, workers: int) -> dict:
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(src, "src"),
                        env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", child_script, mode, str(path), str(workers)],
            capture_output=True, text=True, env=env, check=False,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        return json.loads(proc.stdout.splitlines()[-1])

    trace_path = results_dir / "BENCH_shard_trace.tmp.npz"
    store_path = results_dir / "BENCH_shard_store.tmp"
    try:
        write_sessions_npz(table, trace_path, compress=False)
        start = time.perf_counter()
        shard_store = build_shard_store(
            table, store_path, epochs_per_shard=24,
            grid=week_context.analysis.grid,
        )
        store_build_s = time.perf_counter() - start
        n_shards = len(shard_store.shards)
        shard_workers = max(2, min(n_shards, n_cpus))

        mono = run_child("mono", trace_path, 0)
        sharded = run_child("shard", store_path, shard_workers)
        assert mono["fingerprint"] == sharded["fingerprint"]

        peak_ratio = sharded["peak_rss_bytes"] / mono["peak_rss_bytes"]
        analyze_speedup = mono["analyze_seconds"] / sharded["analyze_seconds"]
        gate_memory = workload == "week"
        gate_wall = workload == "week" and n_cpus >= 4
        if gate_memory:
            assert peak_ratio <= 0.5, (
                sharded["peak_rss_bytes"], mono["peak_rss_bytes"])
        if gate_wall:
            assert analyze_speedup >= 1.3, analyze_speedup

        sharding = {
            "workload": f"{workload} (full trace)",
            "sessions": len(table),
            "shards": n_shards,
            "epochs_per_shard": 24,
            "shard_workers": shard_workers,
            "store_build_seconds": store_build_s,
            "store_bytes": sum(
                f.stat().st_size for f in store_path.iterdir()
            ),
            "monolithic": mono,
            "sharded": sharded,
            "parent_peak_rss_ratio": peak_ratio,
            "analyze_speedup_vs_indexed": analyze_speedup,
            "identical_outputs": True,
            "gates_enforced": {
                "parent_peak_rss_ratio_max_0.5": gate_memory,
                "analyze_speedup_min_1.3": gate_wall,
            },
            "comparison_note": (
                "speedup meaningful: ran on >= 4 CPUs"
                if n_cpus >= 4
                else f"speedup NOT gated: {n_cpus} CPU(s) — the "
                "wall-clock column measures pool overhead, not "
                "parallelism; the peak-RSS column is CPU-independent"
            ),
        }
    finally:
        trace_path.unlink(missing_ok=True)
        if store_path.is_dir():
            for f in store_path.iterdir():
                f.unlink()
            store_path.rmdir()

    # --- mechanistic engine: scalar loop vs lockstep batch kernel -----
    from bench_sim_batch import mechanistic_engine_section

    mechanistic = mechanistic_engine_section(workload)

    # --- result cache: memoized per-shard partials --------------------
    # The daily-monitoring story: analyze a store once (cold, populates
    # the cache), re-analyze it warm (pure load+merge; gated >= 5x on
    # the week workload), then rebuild the store with one extra period
    # of sessions appended via ShardStoreBuilder and confirm the warm
    # run recomputes ONLY the new shard (cache.miss == new shards,
    # asserted at every workload — it is a correctness property of
    # content addressing, not a perf number).
    import shutil

    from repro.core.resultcache import ResultCache
    from repro.core.shards import ShardStoreBuilder, analyze_shards

    n_epochs_total = week_context.analysis.grid.n_epochs
    period_epochs = max(1, math.ceil(n_epochs_total / 7))
    epoch_seconds = week_context.analysis.grid.epoch_seconds
    origin = week_context.analysis.grid.origin
    epoch_index = np.floor(
        (table.start_time - origin) / epoch_seconds
    ).astype(np.int64)
    period_chunks = []
    for p in range(math.ceil(n_epochs_total / period_epochs)):
        rows = np.nonzero(
            (epoch_index >= p * period_epochs)
            & (epoch_index < (p + 1) * period_epochs)
        )[0]
        if len(rows):
            period_chunks.append(table.select(rows))

    def build_periods(path, chunks):
        builder = ShardStoreBuilder(
            path, schema=table.schema, epoch_seconds=epoch_seconds,
            epochs_per_shard=period_epochs,
        )
        for chunk in chunks:
            builder.append(chunk)
        return builder.finalize()

    cache_dir = results_dir / "BENCH_result_cache.tmp"
    store_a_dir = results_dir / "BENCH_rc_store_a.tmp"
    store_b_dir = results_dir / "BENCH_rc_store_b.tmp"
    try:
        cache = ResultCache(cache_dir)
        store_a = build_periods(store_a_dir, period_chunks[:-1])
        config = AnalysisConfig()
        uncached = analyze_shards(store_a, config)

        cold_metrics = MetricsRegistry()
        with use_metrics(cold_metrics):
            start = time.perf_counter()
            cold = analyze_shards(store_a, config, result_cache=cache)
            cold_s = time.perf_counter() - start
        warm_metrics = MetricsRegistry()
        with use_metrics(warm_metrics):
            start = time.perf_counter()
            warm = analyze_shards(store_a, config, result_cache=cache)
            warm_s = time.perf_counter() - start
        for name in uncached.metric_names:
            assert uncached[name].epochs == cold[name].epochs, name
            assert uncached[name].epochs == warm[name].epochs, name
        assert cold_metrics.get("cache.miss") == len(store_a.shards)
        assert warm_metrics.get("cache.hit") == len(store_a.shards)
        assert warm_metrics.get("cache.miss") == 0
        warm_speedup = cold_s / warm_s
        if workload == "week":
            assert warm_speedup >= 5.0, (cold_s, warm_s)

        # Append one more period (the "new day") into a fresh store:
        # identical chunk sequence for the shared prefix, so the shared
        # shards' bytes — and hence their cache keys — are unchanged.
        store_b = build_periods(store_b_dir, period_chunks)
        new_shards = len(store_b.shards) - len(store_a.shards)
        assert new_shards >= 1, "append produced no new shard"
        append_metrics = MetricsRegistry()
        with use_metrics(append_metrics):
            start = time.perf_counter()
            appended = analyze_shards(store_b, config, result_cache=cache)
            append_s = time.perf_counter() - start
        assert append_metrics.get("cache.miss") == new_shards, (
            append_metrics.get("cache.miss"), new_shards)
        assert append_metrics.get("cache.hit") == len(store_a.shards)
        uncached_b = analyze_shards(store_b, config)
        for name in uncached_b.metric_names:
            assert uncached_b[name].epochs == appended[name].epochs, name

        result_cache_section = {
            "workload": workload,
            "shards_initial": len(store_a.shards),
            "epochs_per_shard": period_epochs,
            "sessions": store_a.total_sessions,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "warm_speedup": warm_speedup,
            "cold_misses": cold_metrics.get("cache.miss"),
            "warm_hits": warm_metrics.get("cache.hit"),
            "cache_entries": cache.stats().entries,
            "cache_bytes": cache.stats().total_bytes,
            "append_one_day": {
                "shards_total": len(store_b.shards),
                "new_shards": new_shards,
                "cache_misses": append_metrics.get("cache.miss"),
                "cache_hits": append_metrics.get("cache.hit"),
                "analyze_seconds": append_s,
                "misses_equal_new_shards": True,
            },
            "identical_outputs": True,
            "gates_enforced": {
                "warm_speedup_min_5": workload == "week",
                "append_misses_equal_new_shards": True,
            },
        }
    finally:
        for path in (cache_dir, store_a_dir, store_b_dir):
            shutil.rmtree(path, ignore_errors=True)

    # --- profiling: SIGPROF sampler overhead + span attribution -------
    # The gated number is the same deterministic bound the
    # observability section uses: the sampler costs exactly
    # samples x handler_cost (the handler is an ordinary Python call
    # between bytecodes), so overhead = n_samples x measured per-sample
    # cost over the plain run — noise-free where the end-to-end delta
    # is not. The attribution assert pins the profiler's whole point:
    # the hottest stack must be a real pipeline span, not (no-span).
    from repro.obs.profile import NO_SPAN, SamplingProfiler, profiler_available

    profiling = {"available": profiler_available()}
    if profiler_available():
        prof_tracer = Tracer(name="bench.profile")
        profiler = SamplingProfiler(prof_tracer, hz=97)
        with use_tracer(prof_tracer), use_metrics(MetricsRegistry()):
            with profiler:
                start = time.perf_counter()
                analyze_trace(day, workers=0, engine="indexed")
                profiled_s = time.perf_counter() - start
        prof_root = prof_tracer.finish()
        run_span_names = {s.name for s in prof_root.walk()}

        probe_tracer = Tracer(name="probe")
        probe_profiler = SamplingProfiler(probe_tracer, hz=97)
        reps = 10_000
        with probe_tracer.span("a"), probe_tracer.span("b"), \
                probe_tracer.span("c"):
            start = time.perf_counter()
            for _ in range(reps):
                probe_profiler._handle(None, None)
            handler_cost_s = (time.perf_counter() - start) / reps
        probe_tracer.finish()

        prof_overhead_pct = (
            100.0 * profiler.n_samples * handler_cost_s / plain_s
        )
        if workload == "week":
            assert prof_overhead_pct < 3.0, (
                profiler.n_samples, handler_cost_s, plain_s)

        top = profiler.top_stack()
        if profiler.n_samples >= 10:  # tiny smoke may catch few ticks
            assert top is not None
            assert top[0][-1] != NO_SPAN, top
            assert top[0][-1] in run_span_names, (top, run_span_names)

        flame_path = results_dir / "BENCH_profile.flame.txt"
        profiler.write_collapsed(flame_path)

        profiling = {
            "available": True,
            "hz": 97,
            "engine": "indexed, workers=0",
            "plain_seconds": plain_s,
            "profiled_seconds": profiled_s,
            "end_to_end_delta_pct": 100.0 * (profiled_s / plain_s - 1.0),
            "samples": profiler.n_samples,
            "unique_stacks": len(profiler.samples),
            "handler_cost_seconds": handler_cost_s,
            "overhead_pct": prof_overhead_pct,
            "top_stack": ";".join(top[0]) if top else None,
            "top_stack_samples": top[1] if top else 0,
            "flamegraph": flame_path.name,
            "gates_enforced": {"overhead_max_3pct": workload == "week"},
        }

    payload = {
        "schema_version": 4,
        "generated_at_unix": time.time(),
        "generated_by": "benchmarks/bench_pipeline_core.py",
        "workload": f"{workload} (first 24 h)",
        "sessions": len(day),
        "epochs": serial.grid.n_epochs,
        "metrics": len(serial.metric_names),
        "cpus": n_cpus,
        "serial_seconds": serial_s,
        "serial_sessions_per_sec": len(day) / serial_s,
        "parallel_workers": n_cpus,
        "parallel_seconds": parallel_s,
        "parallel_sessions_per_sec": len(day) / parallel_s,
        "speedup": serial_s / parallel_s,
        "parallel_comparison_note": (
            "meaningful: ran on > 1 CPU"
            if n_cpus > 1
            else "NOT meaningful: 1 CPU — 'speedup' here measures "
            "process-pool overhead only"
        ),
        "indexed_seconds": indexed_s,
        "indexed_sessions_per_sec": len(day) / indexed_s,
        "indexed_speedup_vs_serial": serial_s / indexed_s,
        "indexed_phase_speedups": {
            "aggregate": phase_ratio(st.aggregate_s, it.aggregate_s),
            "aggregate_plus_problems": phase_ratio(
                st.aggregate_s + st.problems_s, it.aggregate_s + it.problems_s
            ),
            "problems": phase_ratio(st.problems_s, it.problems_s),
            "critical": phase_ratio(st.critical_s, it.critical_s),
        },
        "serial_phases": serial.timings.as_dict(),
        "parallel_phases": parallel.timings.as_dict(),
        "indexed_phases": indexed.timings.as_dict(),
        "sweep": {
            "configs": len(configs),
            "threshold_scales": list(scales),
            "independent_seconds": independent_s,
            "sweep_seconds": sweep_s,
            "sweep_speedup": sweep_speedup,
            "identical_outputs": True,
        },
        "worker_transport": worker_transport,
        "observability": {
            "engine": "indexed, workers=0",
            "plain_seconds": plain_s,
            "traced_seconds": traced_s,
            "end_to_end_delta_pct": 100.0 * (traced_s / plain_s - 1.0),
            "end_to_end_note": (
                "paired interleaved min-of-3; scheduler noise on a "
                "shared box exceeds the true instrumentation cost, so "
                "the gate uses the per-op bound below"
            ),
            "spans_per_run": traced_spans,
            "metric_ops_per_run": metric_ops,
            "span_cost_seconds": span_cost_s,
            "counter_cost_seconds": inc_cost_s,
            "instrumentation_seconds": instrumentation_s,
            "overhead_pct": obs_overhead_pct,
        },
        "streaming": {
            "workload": f"{workload} (full trace)",
            "sessions": len(table),
            "epochs": len(epoch_chunks),
            "per_epoch_rebuild_seconds": rebuild_s,
            "streaming_append_detect_seconds": streaming_s,
            "append_detect_speedup": append_detect_speedup,
            "cold_build_seconds": cold_build_s,
            "snapshot_load_seconds": load_s,
            "snapshot_load_speedup": snapshot_speedup,
            "snapshot_bytes": snapshot_bytes,
            "identical_outputs": True,
        },
        "sharding": sharding,
        "mechanistic": mechanistic,
        "result_cache": result_cache_section,
        "profiling": profiling,
    }

    # --- journal-backed gate: the same verdicts from the record alone -
    # The payload is journaled and every gate re-derived from the
    # flattened record (repro.obs.gate), with no access to the live
    # bench objects; an enforced failure here means the journal gate
    # and the inline asserts above have drifted apart.
    from repro.obs.gate import evaluate_record, ingest_payload
    from repro.obs.journal import RunJournal

    bench_journal = RunJournal(results_dir / "BENCH_journal")
    bench_record = ingest_payload(bench_journal, payload)
    verdicts = evaluate_record(bench_record)
    gate_failures = [v for v in verdicts if v.enforced and not v.passed]
    assert not gate_failures, [v.as_dict() for v in gate_failures]
    payload["journal_gate"] = {
        "journal": str(bench_journal.file),
        "run_id": bench_record["run_id"],
        "enforced": sum(1 for v in verdicts if v.enforced),
        "verdicts": [v.as_dict() for v in verdicts],
    }

    path = results_dir / "BENCH_pipeline.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {path}: "
          f"{payload['serial_sessions_per_sec']:.0f} sess/s serial, "
          f"{payload['parallel_sessions_per_sec']:.0f} sess/s parallel "
          f"({payload['speedup']:.2f}x on {n_cpus} CPUs), "
          f"{payload['indexed_sessions_per_sec']:.0f} sess/s indexed "
          f"({payload['indexed_speedup_vs_serial']:.2f}x vs legacy serial), "
          f"{len(configs)}-config sweep {sweep_speedup:.2f}x vs independent runs, "
          f"tracer overhead {obs_overhead_pct:.4f}%, "
          f"streamed append+detect {append_detect_speedup:.1f}x vs per-epoch "
          f"rebuild, snapshot load {snapshot_speedup:.1f}x vs cold build, "
          f"sharded parent peak {peak_ratio:.2f}x monolithic "
          f"({analyze_speedup:.2f}x analyze wall on {shard_workers} workers), "
          f"mechanistic batch {mechanistic['speedup']:.1f}x vs scalar "
          f"({mechanistic['batch_sessions_per_sec']:.0f} sess/s, "
          f"bit-identical), "
          f"warm cached re-analysis {warm_speedup:.1f}x vs cold "
          f"({result_cache_section['append_one_day']['cache_misses']} miss on "
          "append-one-day), "
          f"profiler overhead "
          f"{profiling.get('overhead_pct', float('nan')):.4f}% at 97 Hz, "
          f"journal gate {payload['journal_gate']['enforced']} enforced / "
          f"{len(verdicts)} evaluated (all passed)")
