"""Bench: cost-aware remediation (paper Section 6 extension).

Not a paper artifact: the paper flags cost-benefit analysis of
remedial measures as future work. This bench sweeps a remediation
budget and compares greedy cost-aware selection of critical clusters
against the paper's cost-blind coverage ranking.
"""

from repro.analysis.costbenefit import cost_benefit_analysis
from repro.analysis.render import render_table
from repro.experiments.runners import ExperimentResult


import numpy as np


def _run(ctx) -> ExperimentResult:
    rows = []
    data = {}
    fractions = (0.01, 0.03, 0.1, 1.0)
    for metric in ("buffering_ratio", "join_failure"):
        ma = ctx.analysis[metric]
        # Probe the total cost once, then sweep tight budget fractions
        # where the orderings actually diverge.
        probe = cost_benefit_analysis(ma)
        total_cost = float(probe.budgets[-1])
        budgets = np.array([f * total_cost for f in fractions])
        result = cost_benefit_analysis(ma, budgets=budgets)
        for frac, aware, blind in zip(
            fractions, result.cost_aware, result.cost_blind
        ):
            rows.append(
                [metric, f"{frac:.0%} of total", aware.n_fixed,
                 aware.improvement, blind.improvement]
            )
        data[metric] = {
            "budget_fractions": list(fractions),
            "cost_aware": [p.improvement for p in result.cost_aware],
            "cost_blind": [p.improvement for p in result.cost_blind],
        }
    text = render_table(
        ["Metric", "Budget", "Clusters fixed (aware)",
         "Cost-aware improvement", "Cost-blind improvement"],
        rows,
        title="Extension — cost-aware vs cost-blind remediation (paper §6)",
    )
    return ExperimentResult("ext-costbenefit", "Cost-benefit extension",
                            text, data)


def bench_ext_costbenefit(benchmark, week_context, report):
    result = benchmark.pedantic(_run, args=(week_context,),
                                rounds=1, iterations=1)
    report(result)
