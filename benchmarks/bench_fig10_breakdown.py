"""Bench: Critical-cluster type breakdown (Figure 10).

Attribution of problem sessions to critical-cluster attribute-type
signatures (Site/CDN/ASN/ConnectionType dominate).
"""

from repro.experiments.runners import run_fig10


def bench_fig10(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_fig10, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
