"""Bench: HHH baseline ablation (ablation).

Critical-cluster detector vs a hierarchical-heavy-hitter baseline
on planted ground truth (paper Section 7 comparison).
"""

from repro.experiments.runners import run_ablation_hhh


def bench_abl_hhh(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_ablation_hhh, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
