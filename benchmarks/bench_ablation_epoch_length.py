"""Bench: epoching-granularity sensitivity (ablation).

The paper fixes one-hour epochs because that is its dataset's finest
granularity; this ablation re-runs the join-failure analysis at 30
minutes and 2 hours over the first two days of the week trace.
"""

from repro.experiments.runners import run_ablation_epoch_length


def bench_abl_epoch_length(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_ablation_epoch_length, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
