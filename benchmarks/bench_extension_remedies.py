"""Bench: automated remediation loop (paper Section 6 extension).

Detect critical clusters on the week trace, suggest remedies via the
Table 3 playbook, apply them causally, re-generate the trace from the
same seeds, and measure the problem-ratio reduction per metric. This
is the generator-level counterpart of the paper's accounting-only
Section 5 what-ifs.
"""

from repro.analysis.render import render_table
from repro.experiments.runners import ExperimentResult
from repro.remedies import evaluate_remedies, suggest_remedies


def _run(ctx) -> ExperimentResult:
    suggestions = {}
    for name, ma in ctx.analysis.metrics.items():
        for s in suggest_remedies(ctx.trace.world, ma, top_k=4):
            suggestions.setdefault(s.remedy.name, s)
    evaluation = evaluate_remedies(
        ctx.trace.spec,
        [s.remedy for s in suggestions.values()],
        baseline=ctx.trace,
    )
    rows = [
        [
            d.metric,
            d.baseline_ratio,
            d.remedied_ratio,
            d.relative_reduction,
        ]
        for d in evaluation.deltas.values()
    ]
    text = render_table(
        ["Metric", "Baseline problem ratio", "Remedied problem ratio",
         "Relative reduction"],
        rows,
        title="Extension — automated remediation, measured by "
        f"re-generation ({len(suggestions)} remedies applied)",
    )
    text += "\nRemedies: " + "; ".join(
        s.remedy.description for s in suggestions.values()
    )
    data = {
        "remedies": [s.remedy.name for s in suggestions.values()],
        "deltas": {
            d.metric: {
                "baseline": d.baseline_ratio,
                "remedied": d.remedied_ratio,
                "relative_reduction": d.relative_reduction,
            }
            for d in evaluation.deltas.values()
        },
    }
    return ExperimentResult("ext-remedies", "Automated remediation", text, data)


def bench_ext_remedies(benchmark, week_context, report):
    result = benchmark.pedantic(_run, args=(week_context,),
                                rounds=1, iterations=1)
    report(result)
