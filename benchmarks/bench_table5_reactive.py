"""Bench: Reactive what-if (Table 5).

Mean reactive improvement per metric vs the zero-delay potential.
"""

from repro.experiments.runners import run_table5


def bench_tab5(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_table5, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
