"""Bench: Scale ablation (ablation).

Pipeline throughput (sessions/second) vs per-epoch trace volume.
"""

from repro.experiments.runners import run_ablation_scale


def bench_abl_scale(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_ablation_scale, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
