"""Bench: Problem-cluster persistence (Figure 8(a,b)).

Inverse CDFs of median and max problem-cluster streak lengths:
many problems persist for hours, a tail lasts a day.
"""

from repro.experiments.runners import run_fig8


def bench_fig08(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_fig8, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
