"""Bench: vectorized batch mechanistic simulation vs the scalar loop.

The lockstep batch kernel (``repro.sim.batch``) replaces the
per-session Python loop behind ``MechanisticQoEEngine.generate``. This
bench times both paths on the same workload, asserts they are
bit-identical, and records sessions/sec for each.

``mechanistic_engine_section`` is shared with
``bench_pipeline_core.bench_pipeline_engine_json``, which stores it
under the ``"mechanistic"`` key of ``BENCH_pipeline.json`` — that is
where the >= 10x day-workload speedup gate lives. The CI ``sim-smoke``
job runs this file on the tiny workload (identity asserted, speedup
recorded but not gated: tiny batches are setup-dominated).
"""

import dataclasses
import os
import time

import numpy as np

from repro.core.metrics import JOIN_FAILURE
from repro.core.pipeline import AnalysisConfig, analyze_trace
from repro.trace.generator import generate_trace
from repro.trace.workloads import StandardWorkloads


def _workload() -> str:
    return os.environ.get("REPRO_BENCH_WORKLOAD", "week")


#: Columns compared for bit-identity (everything a trace records).
TABLE_COLUMNS = (
    "codes", "start_time", "duration_s", "buffering_s",
    "join_time_s", "bitrate_kbps", "join_failed",
)


def mechanistic_spec(workload: str):
    """Day-scale for real runs; tiny for the CI smoke."""
    name = "mechanistic_tiny" if workload == "tiny" else "mechanistic_day"
    return StandardWorkloads.by_name(name, seed=42)


def assert_tables_identical(a, b) -> None:
    for col in TABLE_COLUMNS:
        x, y = getattr(a, col), getattr(b, col)
        assert np.array_equal(x, y, equal_nan=x.dtype.kind == "f"), (
            f"{col} differs between sim paths"
        )


def mechanistic_engine_section(workload: str) -> dict:
    """Timed scalar-vs-batch comparison plus the bit-identity assert.

    Gated (>= 10x) only on the day workload: the tiny smoke batch is
    dominated by fixed setup, so its ratio is not the claim under test.
    """
    spec = mechanistic_spec(workload)
    start = time.perf_counter()
    batch = generate_trace(dataclasses.replace(spec, sim="batch"))
    batch_s = time.perf_counter() - start
    start = time.perf_counter()
    scalar = generate_trace(dataclasses.replace(spec, sim="scalar"))
    scalar_s = time.perf_counter() - start

    assert_tables_identical(batch.table, scalar.table)
    n = len(batch.table)
    speedup = scalar_s / batch_s
    gated = spec.name == "mechanistic_day"
    if gated:
        assert speedup >= 10.0, (scalar_s, batch_s, speedup)
    return {
        "workload": spec.name,
        "sessions": n,
        "epochs": spec.n_epochs,
        "scalar_seconds": scalar_s,
        "scalar_sessions_per_sec": n / scalar_s,
        "batch_seconds": batch_s,
        "batch_sessions_per_sec": n / batch_s,
        "speedup": speedup,
        "bit_identical": True,
        "gates_enforced": {"batch_speedup_min_10": gated},
    }


def bench_mechanistic_batch_generation(benchmark):
    """Sessions/sec of the batch path alone (the production default)."""
    spec = dataclasses.replace(mechanistic_spec(_workload()), sim="batch")
    trace = benchmark.pedantic(
        generate_trace, args=(spec,), rounds=1, iterations=1
    )
    assert trace.n_sessions > 0


def bench_mechanistic_trace_feeds_pipeline():
    """A week of chunk-level traces flows into the analysis pipeline.

    ``mechanistic_week`` end to end on real runs (tiny smoke uses the
    tiny trace): generate under the default (batch) path, then run the
    indexed clustering pipeline over the result — the acceptance check
    that batch-generated traces are first-class pipeline inputs.
    """
    workload = _workload()
    name = "mechanistic_tiny" if workload == "tiny" else "mechanistic_week"
    spec = StandardWorkloads.by_name(name, seed=42)
    start = time.perf_counter()
    trace = generate_trace(spec)
    generate_s = time.perf_counter() - start
    assert trace.grid.n_epochs == spec.n_epochs

    start = time.perf_counter()
    analysis = analyze_trace(
        trace.table,
        config=AnalysisConfig(metrics=(JOIN_FAILURE,)),
        engine="indexed",
    )
    analyze_s = time.perf_counter() - start
    assert analysis.grid.n_epochs == spec.n_epochs
    assert analysis[JOIN_FAILURE.name].epochs
    print(
        f"\n{spec.name}: generated {trace.n_sessions} sessions in "
        f"{generate_s:.1f}s ({trace.n_sessions / generate_s:.0f} sess/s), "
        f"analyzed in {analyze_s:.1f}s"
    )
