"""Bench: Engine agreement ablation (ablation).

Statistical vs chunk-level mechanistic QoE engine on headline
problem rates.
"""

from repro.experiments.runners import run_ablation_engines


def bench_abl_engines(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_ablation_engines, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
