"""Bench: Cluster count timeseries (Figure 9).

Problem vs critical cluster counts per hour for join time, and the
mean reduction factor.
"""

from repro.experiments.runners import run_fig9


def bench_fig09(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_fig9, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
