"""Bench: Attribute-restricted selection (Figure 12).

Join-failure improvement when fixing only Site / ASN / CDN /
ConnType clusters vs considering every critical cluster.
"""

from repro.experiments.runners import run_fig12


def bench_fig12(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_fig12, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
