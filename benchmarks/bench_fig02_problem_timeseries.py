"""Bench: Problem-session timeseries (Figure 2).

Hourly fraction of problem sessions for the four metrics, their
consistency statistics and the (weak) cross-metric correlations.
"""

from repro.experiments.runners import run_fig2


def bench_fig02(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_fig2, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
