"""Benchmark harness fixtures.

Each bench regenerates one table/figure of the paper on the standard
week-scale workload (two weeks for Table 4). The expensive parts —
trace generation and the full clustering pipeline — are built once per
session and shared; each bench times its own experiment computation and
prints the reproduced rows/series (also written to
``benchmarks/results/<id>.txt`` for EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.context import default_context

RESULTS_DIR = Path(__file__).parent / "results"


def bench_workload() -> str:
    """Workload the benches run on (CI smoke overrides it to ``tiny``)."""
    return os.environ.get("REPRO_BENCH_WORKLOAD", "week")


@pytest.fixture(scope="session")
def week_context():
    """One week, 168 hourly epochs, ~440k sessions (most figures).

    ``REPRO_BENCH_WORKLOAD`` substitutes a different standard workload
    (the CI smoke run uses ``tiny``); recorded results are only
    comparable across runs of the same workload.
    """
    return default_context(bench_workload(), seed=42)


@pytest.fixture(scope="session")
def two_week_context():
    """The paper's full two-week span (needed by Table 4 inter-week)."""
    return default_context("two_weeks", seed=42)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def report(capsys, results_dir):
    """Print a result (past pytest's capture) and persist it."""

    def _report(result):
        path = results_dir / f"{result.experiment_id}.txt"
        path.write_text(result.text + "\n", encoding="utf-8")
        with capsys.disabled():
            print()
            print("=" * 78)
            print(result.text)
        return result

    return _report
