"""Bench: Ground-truth validation (substrate validation).

Precision/recall of the critical-cluster detector against the
planted event catalogue (not in the paper: enabled by the
synthetic substrate).
"""

from repro.experiments.runners import run_validation


def bench_validation(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_validation, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
