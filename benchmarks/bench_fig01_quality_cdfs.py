"""Bench: Quality metric CDFs (Figure 1).

CDFs of buffering ratio, bitrate and join time over the week, plus
the headline quantile statements the paper reads off them.
"""

from repro.experiments.runners import run_fig1


def bench_fig01(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_fig1, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
