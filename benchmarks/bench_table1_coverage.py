"""Bench: Critical-cluster coverage (Table 1).

Mean problem/critical cluster counts and coverage per metric: a
small critical set explains most clustered problem sessions.
"""

from repro.experiments.runners import run_table1


def bench_tab1(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_table1, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
