"""Bench: Top-k improvement curves (Figure 11(a,b,c)).

Fraction of problem sessions alleviated by fixing the top-k
critical clusters ranked by prevalence, persistence and coverage.
"""

from repro.experiments.runners import run_fig11


def bench_fig11(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_fig11, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
