"""Bench: Cross-metric Jaccard overlap (Table 2).

Jaccard similarity of the top-100 critical clusters between metric
pairs: the sets are largely disjoint.
"""

from repro.experiments.runners import run_table2


def bench_tab2(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_table2, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
