"""Bench: Most prevalent critical clusters (Table 3).

Critical clusters with >60% prevalence by attribute type, matched
against the planted ground-truth catalogue.
"""

from repro.experiments.runners import run_table3


def bench_tab3(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_table3, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
