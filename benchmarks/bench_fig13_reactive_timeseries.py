"""Bench: Reactive repair timeseries (Figure 13).

Join-failure problem sessions per hour before/after a reactive
strategy with a one-hour detection delay.
"""

from repro.experiments.runners import run_fig13


def bench_fig13(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_fig13, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
