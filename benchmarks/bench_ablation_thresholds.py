"""Bench: Threshold sensitivity ablation (ablation).

Problem/critical structure under varied ratio multipliers and
metric thresholds (the paper claims qualitative robustness).
"""

from repro.experiments.runners import run_ablation_thresholds


def bench_abl_thresholds(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_ablation_thresholds, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
