"""Bench: Problem-cluster prevalence (Figure 7).

Inverse CDF of problem-cluster prevalence per metric: the skewed
distribution with a recurrent-problem head.
"""

from repro.experiments.runners import run_fig7


def bench_fig07(benchmark, week_context, report):
    result = benchmark.pedantic(
        run_fig7, args=(week_context,), rounds=1, iterations=1
    )
    report(result)
