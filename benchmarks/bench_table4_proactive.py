"""Bench: Proactive what-if (Table 4).

History-based proactive fixing: intra-week (4d train / 3d test)
and inter-week (week 1 -> week 2) vs the per-window oracle.
"""

from repro.experiments.runners import run_table4


def bench_tab4(benchmark, two_week_context, report):
    result = benchmark.pedantic(
        run_table4, args=(two_week_context,), rounds=1, iterations=1
    )
    report(result)
